// Package client is the Go client for the szxd compression service. It
// mirrors the in-process szx API shape — Compress/Decompress on value
// slices, streaming variants on readers — over the service's HTTP wire
// protocol, with connection reuse and typed errors that unwrap to the
// same szx sentinels callers already match against.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	szx "repro"
	"repro/internal/wireconv"
	"repro/telemetry/trace"
)

// traceIDHeader mirrors service.TraceIDHeader (the client deliberately
// does not import the server package).
const traceIDHeader = "Szx-Trace-Id"

// Params selects compression options for a request; the zero value uses
// the server's defaults. It is the wire form of szx.Options.
type Params struct {
	ErrorBound  float64  // 0 = server default
	TargetRatio float64  // fixed-ratio mode; mutually exclusive with ErrorBound
	Mode        szx.Mode // BoundAbsolute or BoundRelative
	BlockSize   int      // 0 = server default
	Workers     int      // 0 = serial, -1 = server max, else capped by server
}

func (p Params) query(elem string) url.Values {
	q := url.Values{}
	if elem != "" {
		q.Set("t", elem)
	}
	if p.ErrorBound > 0 {
		q.Set("e", strconv.FormatFloat(p.ErrorBound, 'g', -1, 64))
	}
	if p.TargetRatio > 0 {
		q.Set("ratio", strconv.FormatFloat(p.TargetRatio, 'g', -1, 64))
	}
	if p.Mode == szx.BoundRelative {
		q.Set("mode", "rel")
	}
	if p.BlockSize > 0 {
		q.Set("block", strconv.Itoa(p.BlockSize))
	}
	if p.Workers != 0 {
		q.Set("workers", strconv.Itoa(p.Workers))
	}
	return q
}

// queryString is the encoded form of query(elem), cached: Params is
// comparable and a process uses a handful of distinct parameter sets over
// millions of calls, so encoding each set once removes a url.Values
// allocation (and its string building) from every request.
func (p Params) queryString(elem string) string {
	k := queryKey{p: p, elem: elem}
	if v, ok := queryCache.Load(k); ok {
		return v.(string)
	}
	s := p.query(elem).Encode()
	queryCache.Store(k, s)
	return s
}

type queryKey struct {
	p    Params
	elem string
}

var queryCache sync.Map // queryKey -> string

// Client talks to one szxd instance. It is safe for concurrent use; the
// underlying http.Client pools and reuses connections, so a long-lived
// Client amortizes TCP/TLS setup the same way a pooled Codec amortizes
// buffers.
type Client struct {
	base  string
	hc    *http.Client
	co    *coalescer   // nil unless WithCoalescing
	retry *RetryPolicy // nil unless WithRetry
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (custom
// transport, timeout, instrumentation).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a Client for the service at base (e.g. "http://host:8080").
// The default transport keeps idle connections to the one host it talks
// to, sized for the service's typical in-flight cap.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		hc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        128,
				MaxIdleConnsPerHost: 128,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Error is a non-2xx service response. Unwrap maps the wire code back to
// the szx sentinel errors, so errors.Is(err, szx.ErrCorrupt) works on a
// remote decode failure exactly as on a local one.
type Error struct {
	Status     int           // HTTP status code
	Code       string        // wire error code ("corrupt", "overloaded", ...)
	Message    string        // human-readable detail from the server
	Frame      int           // frame index for streaming-container failures
	Offset     int64         // byte offset for streaming-container failures
	RetryAfter time.Duration // parsed Retry-After hint, 0 if absent
	TraceID    string        // server-assigned trace ID, for /debug/requests lookup
}

func (e *Error) Error() string {
	return fmt.Sprintf("szxd: %s (%d %s)", e.Message, e.Status, e.Code)
}

// Retryable reports whether the request was shed by admission control or
// drain — failures where the same request may succeed on retry (after
// RetryAfter) or on another instance.
func (e *Error) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// Unwrap exposes the szx sentinel matching the wire code, if any.
func (e *Error) Unwrap() error { return sentinelFor(e.Code) }

// sentinelFor maps a wire error code to the matching szx sentinel; request
// level (*Error) and per-array (*ArrayError) failures share the mapping.
func sentinelFor(code string) error {
	switch code {
	case "corrupt":
		return szx.ErrCorrupt
	case "wrong_type":
		return szx.ErrWrongType
	case "bad_options":
		return szx.ErrBadOptions
	}
	return nil
}

// decodeError turns a non-2xx response into an *Error, tolerating
// non-JSON bodies from intermediaries.
func decodeError(resp *http.Response) error {
	e := &Error{Status: resp.StatusCode, Code: "internal", TraceID: resp.Header.Get(traceIDHeader)}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var we struct {
		Code    string `json:"code"`
		Message string `json:"error"`
		Frame   int    `json:"frame"`
		Offset  int64  `json:"offset"`
	}
	if json.Unmarshal(body, &we) == nil && we.Code != "" {
		e.Code, e.Message, e.Frame, e.Offset = we.Code, we.Message, we.Frame, we.Offset
	} else {
		e.Message = strings.TrimSpace(string(body))
		if e.Message == "" {
			e.Message = http.StatusText(resp.StatusCode)
		}
	}
	return e
}

// headerPool recycles request header maps with Content-Type pre-set.
// http.NewRequestWithContext allocates a fresh map per call, which on a
// 4 KiB round trip is measurable overhead; a request's headers are written
// before its response arrives, so the map is safe to reclaim once Do
// returns.
var headerPool = sync.Pool{New: func() any {
	h := make(http.Header, 2)
	h.Set("Content-Type", "application/octet-stream")
	return h
}}

// bodyPool recycles staging buffers for small request bodies, so a warm
// client encodes its floats into reused capacity instead of allocating a
// fresh slice per call.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBody() *bytes.Buffer  { b := bodyPool.Get().(*bytes.Buffer); b.Reset(); return b }
func putBody(b *bytes.Buffer) { bodyPool.Put(b) }
func stageF32(vals []float32) *bytes.Buffer {
	b := getBody()
	b.Grow(4 * len(vals))
	b.Write(wireconv.AppendF32(b.AvailableBuffer(), vals))
	return b
}

func stageF64(vals []float64) *bytes.Buffer {
	b := getBody()
	b.Grow(8 * len(vals))
	b.Write(wireconv.AppendF64(b.AvailableBuffer(), vals))
	return b
}

// readBody slurps a response body into a buffer pre-sized from
// Content-Length (szxd always sets it), so large responses skip
// io.ReadAll's doubling growth.
func readBody(resp *http.Response) ([]byte, error) {
	n := resp.ContentLength
	if n < 0 {
		return io.ReadAll(resp.Body)
	}
	buf := bytes.NewBuffer(make([]byte, 0, n+1))
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// post sends one data-plane request. With WithRetry configured and a
// replayable body, shed responses (429/503) and transport failures are
// retried with jittered backoff, honoring Retry-After and the context
// deadline; streaming bodies get exactly one attempt.
func (c *Client) post(ctx context.Context, path, rawQuery string, body io.Reader) (*http.Response, error) {
	if c.retry == nil || !rewindable(body) {
		return c.postOnce(ctx, path, rawQuery, body)
	}
	p := *c.retry
	for attempt := 1; ; attempt++ {
		resp, err := c.postOnce(ctx, path, rawQuery, body)
		if err == nil || attempt >= p.MaxAttempts || !IsRetryable(err) {
			return resp, err
		}
		if s, ok := body.(io.Seeker); ok {
			if _, serr := s.Seek(0, io.SeekStart); serr != nil {
				return nil, err
			}
		}
		if serr := sleepRetry(ctx, retryDelay(p, attempt, retryAfterOf(err))); serr != nil {
			// Deadline or cancellation during backoff: the shed error, not
			// the sleep's, is the informative one.
			return nil, err
		}
	}
}

func (c *Client) postOnce(ctx context.Context, path, rawQuery string, body io.Reader) (*http.Response, error) {
	u := c.base + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, body)
	if err != nil {
		return nil, err
	}
	h := headerPool.Get().(http.Header)
	req.Header = h
	// A trace travelling in ctx rides the wire as a traceparent header, so
	// the server adopts the caller's trace ID and the round trip shows up
	// on the caller's trace as one client-side span.
	tr := trace.FromContext(ctx)
	if tr != nil {
		h.Set("Traceparent", tr.Traceparent())
	}
	sp := tr.StartSpan("client:" + strings.TrimPrefix(path, "/v1/"))
	resp, err := c.hc.Do(req)
	sp.End()
	h.Del("Traceparent")
	headerPool.Put(h)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp, nil
}

// Compress sends vals to the service and returns the SZx stream. With
// coalescing enabled (WithCoalescing), small payloads may ride a shared
// batch request; vals must then stay unmodified until Compress returns.
func (c *Client) Compress(ctx context.Context, vals []float32, p Params) ([]byte, error) {
	if c.co != nil && 4*len(vals) <= c.co.maxArrayBytes {
		return c.co.compress(ctx, vals, p)
	}
	body := stageF32(vals)
	defer putBody(body)
	resp, err := c.post(ctx, "/v1/compress", p.queryString("f32"), bytes.NewReader(body.Bytes()))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return readBody(resp)
}

// CompressFloat64 is Compress for float64 payloads.
func (c *Client) CompressFloat64(ctx context.Context, vals []float64, p Params) ([]byte, error) {
	body := stageF64(vals)
	defer putBody(body)
	resp, err := c.post(ctx, "/v1/compress", p.queryString("f64"), bytes.NewReader(body.Bytes()))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return readBody(resp)
}

// Decompress sends a compressed stream (single SZx stream or SZXS
// container, the server auto-detects) and returns the float32 values.
func (c *Client) Decompress(ctx context.Context, comp []byte) ([]float32, error) {
	resp, err := c.post(ctx, "/v1/decompress", "", bytes.NewReader(comp))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := readBody(resp)
	if err != nil {
		return nil, err
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("szxd: truncated response (%d bytes)", len(raw))
	}
	return bytesToF32(raw), nil
}

// DecompressFloat64 is Decompress for float64 streams.
func (c *Client) DecompressFloat64(ctx context.Context, comp []byte) ([]float64, error) {
	resp, err := c.post(ctx, "/v1/decompress", "", bytes.NewReader(comp))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := readBody(resp)
	if err != nil {
		return nil, err
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("szxd: truncated response (%d bytes)", len(raw))
	}
	return bytesToF64(raw), nil
}

// StreamCompress uploads raw little-endian float32 bytes from r and
// returns a reader over the SZXS container the server produces. Both
// directions stream: neither side buffers the whole payload. The caller
// must Close the returned reader.
func (c *Client) StreamCompress(ctx context.Context, r io.Reader, p Params) (io.ReadCloser, error) {
	resp, err := c.post(ctx, "/v1/stream/compress", p.queryString(""), r)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// StreamDecompress uploads an SZXS container from r and returns a reader
// over the raw little-endian float32 bytes. The caller must Close the
// returned reader; a server-side mid-stream failure surfaces as a
// truncated body.
func (c *Client) StreamDecompress(ctx context.Context, r io.Reader) (io.ReadCloser, error) {
	resp, err := c.post(ctx, "/v1/stream/decompress", "", r)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Ready probes /readyz; nil means the instance is accepting work (not
// draining).
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return nil
}

func bytesToF32(b []byte) []float32 { return wireconv.F32(nil, b) }

func bytesToF64(b []byte) []float64 { return wireconv.F64(nil, b) }

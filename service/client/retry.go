package client

import (
	"context"
	"errors"
	"io"
	"math/rand/v2"
	"net/url"
	"time"
)

// RetryPolicy tunes automatic retries of shed requests. Attempts are
// capped, backoff is exponential with full jitter, a server-supplied
// Retry-After always wins over the computed backoff, and a sleep is never
// started that the context deadline could not survive — a retrying client
// fails fast at its deadline rather than sleeping through it.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (0 = 3, 1 = no retries).
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule (0 = 25ms). Attempt n
	// sleeps a uniform random duration in (0, Base·2ⁿ], capped at
	// MaxBackoff — full jitter, so a thundering herd of shed clients
	// decorrelates instead of re-colliding.
	BaseBackoff time.Duration
	// MaxBackoff caps one sleep (0 = 1s).
	MaxBackoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	return p
}

// WithRetry enables automatic retries on the Client for requests whose
// bodies are replayable (in-memory payloads — Compress, Decompress, the
// batch calls). Streaming requests are never retried: their bodies are
// consumed by the failed attempt.
func WithRetry(p RetryPolicy) Option {
	pol := p.withDefaults()
	return func(c *Client) { c.retry = &pol }
}

// IsRetryable reports whether err is worth retrying: a service shed
// (429/503, *Error.Retryable) or a transport-level failure (connection
// refused or reset by a dying node). Context cancellation and deadline
// expiry are never retryable — they mean the caller, not the server,
// ended the request.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *Error
	if errors.As(err, &se) {
		return se.Retryable()
	}
	// Anything else that made it out of http.Client.Do is a transport
	// error (*url.Error wrapping a net error): the request may never have
	// reached a server, so replaying it elsewhere or later is safe for
	// this service's idempotent POSTs.
	var ue *url.Error
	return errors.As(err, &ue)
}

// retryDelay computes the sleep before attempt (1-based count of failures
// so far): full-jitter exponential backoff, overridden upward by the
// server's Retry-After when it is longer.
func retryDelay(p RetryPolicy, attempt int, retryAfter time.Duration) time.Duration {
	ceil := p.BaseBackoff << (attempt - 1)
	if ceil > p.MaxBackoff || ceil <= 0 {
		ceil = p.MaxBackoff
	}
	d := time.Duration(rand.Int64N(int64(ceil))) + 1
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// sleepRetry waits d respecting ctx. If the context's deadline would
// expire mid-sleep, it gives up immediately — there is no point sleeping
// toward an attempt that could never be sent.
func sleepRetry(ctx context.Context, d time.Duration) error {
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < d {
		return context.DeadlineExceeded
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryAfterOf extracts the server's Retry-After hint from err, 0 if none.
func retryAfterOf(err error) time.Duration {
	var se *Error
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return 0
}

// rewindable reports whether body can be replayed for another attempt
// (nil bodies and seekers — bytes.Reader in every non-streaming call).
func rewindable(body io.Reader) bool {
	if body == nil {
		return true
	}
	_, ok := body.(io.Seeker)
	return ok
}

package client

import (
	"context"
	"errors"
	"hash/fnv"
	"math/bits"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/service/cluster"
	"repro/telemetry"
)

// Policy selects how a ClusterClient orders candidate nodes for a request.
type Policy int

const (
	// PolicyLeastLoaded routes by power-of-two-choices over each node's
	// polled load (queue depth + in-flight) plus this client's own
	// outstanding requests — two random candidates, the less loaded wins.
	// The default: no coordination, near-optimal load spread.
	PolicyLeastLoaded Policy = iota
	// PolicyHash routes by rendezvous (highest-random-weight) hashing on
	// the caller's affinity key (WithAffinityKey). Requests sharing a key
	// land on the same node while it stays routable, so a node's warm
	// buffers and coalescing batches see related traffic.
	PolicyHash
	// PolicyOrdered routes in configured node order: first routable node
	// wins. Gives operators an explicit primary/backup topology.
	PolicyOrdered
)

// ErrNoNodes is returned when a ClusterClient has an empty node list.
var ErrNoNodes = errors.New("szxd cluster: no nodes configured")

// HedgePolicy tunes request hedging: after a latency trigger, an admitted
// request is raced against a second replica and the first response wins
// (the loser is context-cancelled). Hedges are budgeted so a slow fleet
// sees bounded extra load, never a multiplied one.
type HedgePolicy struct {
	// Disabled turns hedging off (the zero policy hedges).
	Disabled bool
	// Delay, when positive, is a fixed hedge trigger — fire the second
	// request this long after the first. Overrides the percentile trigger;
	// mostly for tests and fixed-SLO callers.
	Delay time.Duration
	// Percentile sets the adaptive trigger: hedge when the first request
	// has outlived this fraction of recent successful calls (0 = 0.95).
	// Only latencies of successful calls feed the estimate, so a burst of
	// fast failures cannot drag the trigger toward zero.
	Percentile float64
	// MinDelay and MaxDelay clamp the adaptive trigger (0 = 1ms / 500ms).
	// Until enough samples accumulate the trigger sits at MaxDelay.
	MinDelay time.Duration
	MaxDelay time.Duration
	// Budget is the hedge earn rate: each successful call banks this many
	// hedge credits (0 = 0.1 — at most one hedge per ten successes, plus a
	// small starting bank). A hedge spends one credit; with the bank empty
	// the trigger lapses and the primary runs alone.
	Budget float64
}

func (h HedgePolicy) withDefaults() HedgePolicy {
	if h.Percentile <= 0 || h.Percentile >= 1 {
		h.Percentile = 0.95
	}
	if h.MinDelay <= 0 {
		h.MinDelay = time.Millisecond
	}
	if h.MaxDelay <= 0 {
		h.MaxDelay = 500 * time.Millisecond
	}
	if h.MaxDelay < h.MinDelay {
		h.MaxDelay = h.MinDelay
	}
	if h.Budget <= 0 {
		h.Budget = 0.1
	}
	return h
}

// ClusterConfig configures a ClusterClient. Only Nodes is required.
type ClusterConfig struct {
	// Nodes is the static list of szxd base URLs (or host:port strings).
	Nodes []string
	// Policy orders candidates per request (default PolicyLeastLoaded).
	Policy Policy
	// Hedge tunes second-replica racing; the zero value hedges with
	// defaults, set Hedge.Disabled to turn it off.
	Hedge HedgePolicy
	// Retry caps cross-node retries of shed/failed requests; zero-value
	// fields take RetryPolicy defaults (3 attempts, jittered backoff).
	Retry RetryPolicy
	// RetryBudget is the retry earn rate, like HedgePolicy.Budget but for
	// the retry bank (0 = 0.2). The budget is global across the client: an
	// overloaded fleet shedding every request exhausts it and subsequent
	// failures surface immediately instead of amplifying the overload.
	RetryBudget float64
	// PollInterval is the membership probe cadence (0 = 1s; negative
	// disables background polling — callers then drive
	// Membership().PollOnce themselves, which tests do).
	PollInterval time.Duration
	// HTTPClient overrides the data-plane client shared by all nodes.
	HTTPClient *http.Client
}

// clusterNode pairs one node's single-node Client with this client's
// local view of it.
type clusterNode struct {
	addr        string
	c           *Client
	outstanding atomic.Int64 // requests this client has in flight there
}

// ClusterClient fans a Client's API out over a fleet of szxd nodes: it
// embeds a cluster.Membership over the node list, routes each request by
// the configured policy around draining/suspect/dead nodes, hedges slow
// requests against a second replica, and retries shed ones elsewhere —
// all under budgets that cap the extra load at a fraction of the
// successful traffic.
type ClusterClient struct {
	policy Policy
	hedge  HedgePolicy
	retry  RetryPolicy

	nodes []*clusterNode
	mem   *cluster.Membership
	lat   latTracker
	hb    creditBank // hedge credits
	rb    creditBank // retry credits
}

// NewCluster builds a ClusterClient over cfg.Nodes and starts membership
// polling (unless cfg.PollInterval is negative). Call Close to stop it.
func NewCluster(cfg ClusterConfig) (*ClusterClient, error) {
	if len(cfg.Nodes) == 0 {
		return nil, ErrNoNodes
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 128,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	cc := &ClusterClient{
		policy: cfg.Policy,
		hedge:  cfg.Hedge.withDefaults(),
		retry:  cfg.Retry.withDefaults(),
	}
	seen := make(map[string]bool)
	for _, n := range cfg.Nodes {
		addr := cluster.NormalizeAddr(n)
		if addr == "" || seen[addr] {
			continue
		}
		seen[addr] = true
		cc.nodes = append(cc.nodes, &clusterNode{
			addr: addr,
			// Per-node clients are retry-free on purpose: the cluster layer
			// retries across nodes, which beats hammering the node that
			// just shed us.
			c: New(addr, WithHTTPClient(hc)),
		})
	}
	if len(cc.nodes) == 0 {
		return nil, ErrNoNodes
	}
	// Budgets start with a small bank (ten credits) so short runs and cold
	// clients can hedge/retry at all; steady state is governed by the earn
	// rates.
	cc.hb.init(cc.hedge.Budget, 10)
	cc.rb.init(cfg.RetryBudget, 10)
	poll := cfg.PollInterval
	cc.mem = cluster.New(cluster.Config{
		Peers:        cfg.Nodes,
		PollInterval: max(poll, 0),
	})
	if poll >= 0 {
		cc.mem.Start()
	}
	return cc, nil
}

// Close stops membership polling. The client remains usable afterwards
// (it just stops refreshing peer state).
func (cc *ClusterClient) Close() error {
	cc.mem.Stop()
	return nil
}

// Membership exposes the underlying peer tracker (for /debug mounting and
// tests).
func (cc *ClusterClient) Membership() *cluster.Membership { return cc.mem }

// Peers snapshots the current peer views.
func (cc *ClusterClient) Peers() []cluster.PeerView { return cc.mem.Peers() }

// affinityCtxKey carries the caller's routing key in a context.
type affinityCtxKey struct{}

// WithAffinityKey tags ctx with a routing affinity key. Under PolicyHash,
// requests sharing a key route to the same node while it stays healthy.
func WithAffinityKey(ctx context.Context, key string) context.Context {
	return context.WithValue(ctx, affinityCtxKey{}, key)
}

// AffinityKey returns the routing key set by WithAffinityKey, "" if none.
func AffinityKey(ctx context.Context) string {
	key, _ := ctx.Value(affinityCtxKey{}).(string)
	return key
}

// rendezvousWeight scores one (key, node) pair for highest-random-weight
// hashing: FNV-64a over key and address. Each key induces an independent
// pseudo-random permutation of the nodes, so when a node dies only its
// keys move (to their second choice) — the property that makes rendezvous
// hashing rebalance minimally.
func rendezvousWeight(key, addr string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(addr))
	return h.Sum64()
}

// load is the routing signal for one node: the peer's last-polled queue
// depth + in-flight, plus the requests this client has dispatched there
// since (the poll data is up to an interval stale; local outstanding
// covers the gap).
func (cc *ClusterClient) load(n *clusterNode, v cluster.PeerView, known bool) int {
	l := int(n.outstanding.Load())
	if known {
		l += v.Load
	}
	return l
}

// candidates orders the nodes for one dispatch: routable (alive, not
// draining) nodes first in policy order, then suspects, then the rest —
// so the retry loop walks from best to worst and a fully-dark fleet still
// gets attempted rather than failing without trying.
func (cc *ClusterClient) candidates(key string) []*clusterNode {
	views := cc.mem.Peers()
	vm := make(map[string]cluster.PeerView, len(views))
	for _, v := range views {
		vm[v.Addr] = v
	}
	routable := make([]*clusterNode, 0, len(cc.nodes))
	var suspects, rest []*clusterNode
	for _, n := range cc.nodes {
		v, ok := vm[n.addr]
		switch {
		case ok && v.Routable():
			routable = append(routable, n)
		case ok && v.Suspect():
			suspects = append(suspects, n)
		default:
			rest = append(rest, n)
		}
	}
	switch {
	case len(routable) == 0:
		telemetry.ClusterRoutedFallback.Inc()
	case cc.policy == PolicyHash:
		if key == "" {
			// No affinity requested: a random key per dispatch spreads
			// keyless traffic instead of pinning it all to one node.
			key = strconv.FormatUint(rand.Uint64(), 36)
		}
		sort.Slice(routable, func(i, j int) bool {
			return rendezvousWeight(key, routable[i].addr) > rendezvousWeight(key, routable[j].addr)
		})
		telemetry.ClusterRoutedHash.Inc()
	case cc.policy == PolicyOrdered:
		telemetry.ClusterRoutedOrdered.Inc()
	default: // PolicyLeastLoaded
		if len(routable) > 1 {
			// Power of two choices: sample two distinct candidates, put
			// the less loaded one first. The rest keep their order as the
			// retry/hedge tail.
			i := rand.IntN(len(routable))
			j := rand.IntN(len(routable) - 1)
			if j >= i {
				j++
			}
			if cc.load(routable[j], vm[routable[j].addr], true) < cc.load(routable[i], vm[routable[i].addr], true) {
				i, j = j, i
			}
			routable[0], routable[i] = routable[i], routable[0]
			if j == 0 {
				j = i // j held routable[0]; it moved to slot i
			}
			routable[1], routable[j] = routable[j], routable[1]
		}
		telemetry.ClusterRoutedLeastLoaded.Inc()
	}
	return append(append(routable, suspects...), rest...)
}

// hedgeDelay is the current trigger: the fixed override when set, else
// the clamped latency percentile of recent successful calls.
func (cc *ClusterClient) hedgeDelay() time.Duration {
	if cc.hedge.Delay > 0 {
		return cc.hedge.Delay
	}
	d := cc.lat.quantile(cc.hedge.Percentile)
	if d <= 0 {
		return cc.hedge.MaxDelay
	}
	return min(max(d, cc.hedge.MinDelay), cc.hedge.MaxDelay)
}

// clusterRun executes op against one node, maintaining the local
// outstanding gauge, the per-node request tally, and (on success) the
// latency estimate and earn-side of both budgets.
func clusterRun[T any](cc *ClusterClient, ctx context.Context, n *clusterNode, op func(context.Context, *Client) (T, error)) (T, error) {
	n.outstanding.Add(1)
	defer n.outstanding.Add(-1)
	telemetry.ClusterNodeRequests(n.addr).Inc()
	start := time.Now()
	v, err := op(ctx, n.c)
	if err == nil {
		cc.lat.observe(time.Since(start))
		cc.hb.earn()
		cc.rb.earn()
	}
	return v, err
}

// callResult is one node's answer in a hedged race.
type callResult[T any] struct {
	v      T
	err    error
	hedged bool
}

// hedgedCall runs op on primary and, if it outlives the hedge trigger and
// the budget allows, races a second copy on backup. First success wins;
// the loser's context is cancelled immediately so its admission slot and
// socket come back. Both goroutines report into a buffered channel sized
// for both, so an abandoned loser can never leak.
func hedgedCall[T any](cc *ClusterClient, ctx context.Context, primary, backup *clusterNode, op func(context.Context, *Client) (T, error)) (T, error) {
	var zero T
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	ch := make(chan callResult[T], 2)
	go func() {
		v, err := clusterRun(cc, pctx, primary, op)
		ch <- callResult[T]{v: v, err: err}
	}()

	var hedgeC <-chan time.Time
	hctx, hcancel := ctx, context.CancelFunc(func() {})
	if backup != nil && !cc.hedge.Disabled {
		t := time.NewTimer(cc.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
		hctx, hcancel = context.WithCancel(ctx)
	}
	defer hcancel()

	outstanding := 1
	var firstErr error
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if r.hedged {
					telemetry.ClusterHedgesWon.Inc()
				}
				// The deferred cancels chase the loser off its node.
				return r.v, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				return zero, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if !cc.hb.take() {
				telemetry.ClusterHedgeBudgetDenied.Inc()
				continue
			}
			telemetry.ClusterHedgesFired.Inc()
			outstanding++
			go func() {
				v, err := clusterRun(cc, hctx, backup, op)
				ch <- callResult[T]{v: v, err: err, hedged: true}
			}()
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// clusterDo is the dispatch spine under every ClusterClient method: order
// the candidates once, then walk them with hedged calls and budgeted
// jittered-backoff retries until success, a non-retryable error, the
// attempt cap, or an exhausted retry budget.
func clusterDo[T any](cc *ClusterClient, ctx context.Context, op func(context.Context, *Client) (T, error)) (T, error) {
	var zero T
	cands := cc.candidates(AffinityKey(ctx))
	for attempt := 1; ; attempt++ {
		primary := cands[(attempt-1)%len(cands)]
		var backup *clusterNode
		if len(cands) > 1 {
			backup = cands[attempt%len(cands)]
		}
		v, err := hedgedCall(cc, ctx, primary, backup, op)
		if err == nil {
			return v, nil
		}
		if attempt >= cc.retry.MaxAttempts || !IsRetryable(err) {
			return zero, err
		}
		if !cc.rb.take() {
			telemetry.ClusterRetryBudgetDenied.Inc()
			return zero, err
		}
		telemetry.ClusterRetries.Inc()
		if sleepRetry(ctx, retryDelay(cc.retry, attempt, retryAfterOf(err))) != nil {
			return zero, err
		}
	}
}

// Compress routes a Compress call across the cluster.
func (cc *ClusterClient) Compress(ctx context.Context, vals []float32, p Params) ([]byte, error) {
	return clusterDo(cc, ctx, func(ctx context.Context, c *Client) ([]byte, error) {
		return c.Compress(ctx, vals, p)
	})
}

// CompressFloat64 routes a CompressFloat64 call across the cluster.
func (cc *ClusterClient) CompressFloat64(ctx context.Context, vals []float64, p Params) ([]byte, error) {
	return clusterDo(cc, ctx, func(ctx context.Context, c *Client) ([]byte, error) {
		return c.CompressFloat64(ctx, vals, p)
	})
}

// Decompress routes a Decompress call across the cluster.
func (cc *ClusterClient) Decompress(ctx context.Context, comp []byte) ([]float32, error) {
	return clusterDo(cc, ctx, func(ctx context.Context, c *Client) ([]float32, error) {
		return c.Decompress(ctx, comp)
	})
}

// DecompressFloat64 routes a DecompressFloat64 call across the cluster.
func (cc *ClusterClient) DecompressFloat64(ctx context.Context, comp []byte) ([]float64, error) {
	return clusterDo(cc, ctx, func(ctx context.Context, c *Client) ([]float64, error) {
		return c.DecompressFloat64(ctx, comp)
	})
}

// CompressBatch routes a batch compress across the cluster. The whole
// batch lands on one node (that is the point of batching); only
// request-level shed errors are retried — per-array errors inside a 200
// response are results, not failures, and come back as-is.
func (cc *ClusterClient) CompressBatch(ctx context.Context, arrays [][]float32, p Params) ([]BatchResult, error) {
	return clusterDo(cc, ctx, func(ctx context.Context, c *Client) ([]BatchResult, error) {
		return c.CompressBatch(ctx, arrays, p)
	})
}

// DecompressBatch routes a batch decompress across the cluster.
func (cc *ClusterClient) DecompressBatch(ctx context.Context, comps [][]byte, p Params) ([]BatchValues, error) {
	return clusterDo(cc, ctx, func(ctx context.Context, c *Client) ([]BatchValues, error) {
		return c.DecompressBatch(ctx, comps, p)
	})
}

// Ready reports whether any node is accepting work, preferring the
// best-ranked candidate.
func (cc *ClusterClient) Ready(ctx context.Context) error {
	var err error
	for _, n := range cc.candidates("") {
		if err = n.c.Ready(ctx); err == nil {
			return nil
		}
	}
	return err
}

// latTracker is a lock-free latency sketch: power-of-two buckets of
// successful call durations. Quantiles land on a bucket's upper bound —
// coarse (within 2×), which is exactly the precision a hedge trigger
// needs and costs two atomic adds per observation.
type latTracker struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
}

func (t *latTracker) observe(d time.Duration) {
	if d < 0 {
		return
	}
	t.buckets[bits.Len64(uint64(d))].Add(1)
	t.count.Add(1)
}

// quantile returns the q-th latency quantile, or 0 while fewer than 16
// samples exist (callers fall back to the configured max delay).
func (t *latTracker) quantile(q float64) time.Duration {
	total := t.count.Load()
	if total < 16 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range t.buckets {
		cum += t.buckets[i].Load()
		if cum >= target {
			return time.Duration(uint64(1) << uint(i))
		}
	}
	return 0
}

// creditBank is a token bucket in milli-credits: spending (a hedge or a
// retry) costs 1000, each successful call earns rate·1000, the bank is
// capped, and it starts with a small grant. The effect is a hard ratio
// bound — extra cluster load ≤ rate × successful traffic + the initial
// bank — which is what keeps hedging and retrying from amplifying an
// overload they cannot fix.
type creditBank struct {
	milli atomic.Int64
	earnM int64 // milli-credits granted per successful call
	capM  int64 // bank ceiling
}

func (b *creditBank) init(rate float64, initial int64) {
	if rate <= 0 {
		rate = 0.1
	}
	b.earnM = int64(rate * 1000)
	if b.earnM < 1 {
		b.earnM = 1
	}
	b.capM = 100 * 1000
	b.milli.Store(initial * 1000)
}

func (b *creditBank) take() bool {
	for {
		cur := b.milli.Load()
		if cur < 1000 {
			return false
		}
		if b.milli.CompareAndSwap(cur, cur-1000) {
			return true
		}
	}
}

func (b *creditBank) earn() {
	for {
		cur := b.milli.Load()
		next := cur + b.earnM
		if next > b.capM {
			next = b.capM
		}
		if next == cur || b.milli.CompareAndSwap(cur, next) {
			return
		}
	}
}

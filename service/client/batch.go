package client

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/wireconv"
	"repro/telemetry"
)

// Batch support: CompressBatch/DecompressBatch pack many arrays into one
// /v1/batch request (SZXB framing, mirrored from the service — the client
// deliberately does not import the server package), and WithCoalescing
// turns individual small Compress calls into shared batches transparently.

const (
	batchMagic     = "SZXB"
	batchVersion   = 1
	batchHeaderLen = len(batchMagic) + 1 + 4
)

// ArrayError is one array's failure inside an otherwise successful batch.
// It unwraps to the szx sentinels exactly as *Error does, so errors.Is
// works whether a decode failed one-shot or batched.
type ArrayError struct {
	Index   int    // position in the request batch
	Code    string // wire error code ("corrupt", "wrong_type", ...)
	Message string
}

func (e *ArrayError) Error() string {
	return fmt.Sprintf("szxd: array %d: %s (%s)", e.Index, e.Message, e.Code)
}

func (e *ArrayError) Unwrap() error { return sentinelFor(e.Code) }

// BatchResult is one array's outcome from CompressBatch: the compressed
// stream, or the per-array error (*ArrayError).
type BatchResult struct {
	Comp []byte
	Err  error
}

// BatchValues is one array's outcome from DecompressBatch.
type BatchValues struct {
	Values []float32
	Err    error
}

// appendFrame appends one length-prefixed array payload.
func appendFrame(out, payload []byte) []byte {
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...)
}

// stageBatch builds an SZXB request body from pre-encoded payloads.
func stageBatch(payloads [][]byte) *bytes.Buffer {
	size := batchHeaderLen
	for _, p := range payloads {
		size += 4 + len(p)
	}
	b := getBody()
	b.Grow(size)
	buf := b.AvailableBuffer()
	buf = append(buf, batchMagic...)
	buf = append(buf, batchVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payloads)))
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	b.Write(buf)
	return b
}

// parseBatchResponse splits an SZXB response into per-array (payload, err)
// pairs, invoking fn for each.
func parseBatchResponse(body []byte, want int, fn func(i int, payload []byte, err error)) error {
	if len(body) < batchHeaderLen || string(body[:4]) != batchMagic || body[4] != batchVersion {
		return fmt.Errorf("szxd: malformed batch response (%d bytes)", len(body))
	}
	count := int(binary.LittleEndian.Uint32(body[5:9]))
	if count != want {
		return fmt.Errorf("szxd: batch response carries %d arrays, want %d", count, want)
	}
	off := batchHeaderLen
	for i := 0; i < count; i++ {
		if len(body)-off < 5 {
			return fmt.Errorf("szxd: batch response truncated at array %d", i)
		}
		status := body[off]
		n := int(binary.LittleEndian.Uint32(body[off+1 : off+5]))
		off += 5
		if len(body)-off < n {
			return fmt.Errorf("szxd: batch response truncated in array %d", i)
		}
		payload := body[off : off+n]
		off += n
		switch status {
		case 0:
			fn(i, payload, nil)
		case 1:
			ae := &ArrayError{Index: i, Code: "internal"}
			var we struct {
				Code    string `json:"code"`
				Message string `json:"error"`
				Index   int    `json:"index"`
			}
			if json.Unmarshal(payload, &we) == nil && we.Code != "" {
				ae.Code, ae.Message = we.Code, we.Message
			} else {
				ae.Message = string(payload)
			}
			fn(i, nil, ae)
		default:
			return fmt.Errorf("szxd: batch response array %d has unknown status %d", i, status)
		}
	}
	return nil
}

// postBatch runs one framed batch request and hands the response frames to
// fn. A returned error condemns the whole batch (per-array failures arrive
// through fn instead).
func (c *Client) postBatch(ctx context.Context, path, rawQuery string, payloads [][]byte, fn func(i int, payload []byte, err error)) error {
	body := stageBatch(payloads)
	defer putBody(body)
	resp, err := c.post(ctx, path, rawQuery, bytes.NewReader(body.Bytes()))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := readBody(resp)
	if err != nil {
		return err
	}
	return parseBatchResponse(raw, len(payloads), fn)
}

// CompressBatch compresses many float32 arrays in one request. The server
// runs the whole batch through one engine pass under one admission slot, so
// N small arrays cost roughly one round trip instead of N. Results are
// positional; results[i].Err (an *ArrayError) reports array i alone — one
// failed array never fails its neighbours. A non-nil returned error means
// the whole request failed and there are no results.
func (c *Client) CompressBatch(ctx context.Context, arrays [][]float32, p Params) ([]BatchResult, error) {
	payloads := make([][]byte, len(arrays))
	stage := getBody()
	defer putBody(stage)
	total := 0
	for _, a := range arrays {
		total += 4 * len(a)
	}
	stage.Grow(total)
	buf := stage.AvailableBuffer()
	for i, a := range arrays {
		start := len(buf)
		buf = wireconv.AppendF32(buf, a)
		payloads[i] = buf[start:len(buf):len(buf)]
	}
	stage.Write(buf)

	results := make([]BatchResult, len(arrays))
	err := c.postBatch(ctx, "/v1/batch/compress", p.queryString("f32"), payloads, func(i int, payload []byte, aerr error) {
		if aerr != nil {
			results[i].Err = aerr
			return
		}
		results[i].Comp = append([]byte(nil), payload...)
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// DecompressBatch decompresses many SZx streams in one request. Only
// Params.Workers is meaningful here; the zero value lets the server pick
// its own batch-wide parallelism.
func (c *Client) DecompressBatch(ctx context.Context, comps [][]byte, p Params) ([]BatchValues, error) {
	results := make([]BatchValues, len(comps))
	err := c.postBatch(ctx, "/v1/batch/decompress", p.queryString("f32"), comps, func(i int, payload []byte, aerr error) {
		if aerr != nil {
			results[i].Err = aerr
			return
		}
		if len(payload)%4 != 0 {
			results[i].Err = fmt.Errorf("szxd: array %d: truncated response (%d bytes)", i, len(payload))
			return
		}
		results[i].Values = bytesToF32(payload)
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// WithCoalescing makes Compress transparently merge concurrent small calls
// into shared CompressBatch requests: a call whose payload is at most
// maxArrayBytes joins the pending batch for its Params, and the batch
// flushes when it reaches maxArrays or when window elapses since its first
// array. Each caller still gets its own result (and its own per-array
// error); the trade is up to one window of added latency per call in
// exchange for one round trip and one admission slot per batch. The flush
// itself runs on a background context, so one caller cancelling cannot
// abort a batch carrying other callers' work — a cancelled caller just
// stops waiting. While coalescing is in effect, the value slice passed to
// Compress must stay unmodified until the call returns.
func WithCoalescing(window time.Duration, maxArrays, maxArrayBytes int) Option {
	return func(c *Client) {
		if window <= 0 {
			window = 2 * time.Millisecond
		}
		if maxArrays <= 0 {
			maxArrays = 64
		}
		if maxArrayBytes <= 0 {
			maxArrayBytes = 256 << 10
		}
		c.co = &coalescer{
			c:             c,
			window:        window,
			maxArrays:     maxArrays,
			maxArrayBytes: maxArrayBytes,
			pending:       make(map[Params]*pendingBatch),
		}
	}
}

// coalescer accumulates small Compress calls into per-Params batches.
type coalescer struct {
	c             *Client
	window        time.Duration
	maxArrays     int
	maxArrayBytes int

	mu      sync.Mutex
	pending map[Params]*pendingBatch
}

// pendingBatch is one open batch: the arrays queued so far and the flush
// rendezvous. done closes once results/err are set.
type pendingBatch struct {
	arrays  [][]float32
	timer   *time.Timer
	done    chan struct{}
	results []BatchResult
	err     error
}

func (co *coalescer) compress(ctx context.Context, vals []float32, p Params) ([]byte, error) {
	enq := time.Now()
	co.mu.Lock()
	pb := co.pending[p]
	if pb == nil {
		pb = &pendingBatch{done: make(chan struct{})}
		co.pending[p] = pb
		pb.timer = time.AfterFunc(co.window, func() { co.flush(p, pb) })
	}
	idx := len(pb.arrays)
	pb.arrays = append(pb.arrays, vals)
	full := len(pb.arrays) >= co.maxArrays
	if full {
		pb.timer.Stop()
		delete(co.pending, p)
	}
	co.mu.Unlock()
	if full {
		co.run(pb, p)
	}

	select {
	case <-pb.done:
		telemetry.BatchCoalesceWaits.Observe(time.Since(enq).Nanoseconds())
		if pb.err != nil {
			return nil, pb.err
		}
		r := pb.results[idx]
		return r.Comp, r.Err
	case <-ctx.Done():
		// The batch still flushes (it may carry other callers); this
		// caller's slot is simply abandoned.
		return nil, ctx.Err()
	}
}

// flush is the window-timer path: detach the batch if it is still pending
// (the size trigger may have raced ahead) and run it.
func (co *coalescer) flush(p Params, pb *pendingBatch) {
	co.mu.Lock()
	if co.pending[p] != pb {
		co.mu.Unlock()
		return
	}
	delete(co.pending, p)
	co.mu.Unlock()
	co.run(pb, p)
}

func (co *coalescer) run(pb *pendingBatch, p Params) {
	telemetry.BatchCoalescedCalls.Add(int64(len(pb.arrays)))
	// Background context: the batch belongs to every queued caller, so no
	// single caller's cancellation may abort it.
	pb.results, pb.err = co.c.CompressBatch(context.Background(), pb.arrays, p)
	close(pb.done)
}

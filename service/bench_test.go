package service

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	szx "repro"
)

func putF32(b []byte, v float32) { binary.LittleEndian.PutUint32(b, math.Float32bits(v)) }

// stageF32 is writeF32's staging step without the ResponseWriter: encode
// vals into the scratch's reused output buffer.
func stageF32(sc *scratch, vals []float32) {
	need := 4 * len(vals)
	out := sc.out[:0]
	if cap(out) < need {
		out = make([]byte, 0, need)
	}
	out = out[:need]
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	sc.out = out
}

// BenchmarkPooledCompressPath measures the admitted-request work for
// /v1/compress minus the HTTP stack: pull the body through the pooled
// scratch, decode bytes to values in reused capacity, compress on the
// pooled Codec. This is the path the pooling exists for — after warmup it
// must run at 0 allocs/op (ReportAllocs pins it in the benchmark output).
func BenchmarkPooledCompressPath(b *testing.B) {
	vals := make([]float32, 64*1024)
	for i := range vals {
		vals[i] = float32(i%97) * 0.125
	}
	var raw []byte
	{
		sc := getScratch(int64(len(raw)))
		raw = append(raw, make([]byte, 4*len(vals))...)
		for i, v := range vals {
			putF32(raw[4*i:], v)
		}
		putScratch(sc)
	}
	opt := szx.Options{ErrorBound: 1e-3}
	rd := bytes.NewReader(raw)

	// Warm one scratch through the pool so steady state starts at iter 0.
	{
		sc := getScratch(int64(len(raw)))
		rd.Reset(raw)
		body, err := sc.readBody(rd, 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		sc.f32 = bytesToF32(sc.f32, body)
		sc.c32.SetOptions(opt)
		if _, err := sc.c32.Compress(sc.f32); err != nil {
			b.Fatal(err)
		}
		putScratch(sc)
	}

	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := getScratch(int64(len(raw)))
		rd.Reset(raw)
		body, err := sc.readBody(rd, 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		sc.f32 = bytesToF32(sc.f32, body)
		sc.c32.SetOptions(opt)
		if _, err := sc.c32.Compress(sc.f32); err != nil {
			b.Fatal(err)
		}
		putScratch(sc)
	}
}

// BenchmarkPooledDecompressPath is the decompress-side twin, including
// the response staging (float→byte) conversion.
func BenchmarkPooledDecompressPath(b *testing.B) {
	vals := make([]float32, 64*1024)
	for i := range vals {
		vals[i] = float32(i%97) * 0.125
	}
	comp, err := szx.Compress(vals, szx.Options{ErrorBound: 1e-3})
	if err != nil {
		b.Fatal(err)
	}
	rd := bytes.NewReader(comp)
	opt := szx.Options{}

	{
		sc := getScratch(int64(len(comp)))
		rd.Reset(comp)
		body, err := sc.readBody(rd, 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		sc.c32.SetOptions(opt)
		out, err := sc.c32.Decompress(body)
		if err != nil {
			b.Fatal(err)
		}
		stageF32(sc, out)
		putScratch(sc)
	}

	b.SetBytes(int64(4 * len(vals)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := getScratch(int64(len(comp)))
		rd.Reset(comp)
		body, err := sc.readBody(rd, 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		sc.c32.SetOptions(opt)
		out, err := sc.c32.Decompress(body)
		if err != nil {
			b.Fatal(err)
		}
		stageF32(sc, out)
		putScratch(sc)
	}
}

// TestPooledPathZeroAllocs is the gating form of the benchmarks above:
// after one warm pass, the pooled compress path must not allocate.
func TestPooledPathZeroAllocs(t *testing.T) {
	vals := make([]float32, 16*1024)
	for i := range vals {
		vals[i] = float32(i % 31)
	}
	raw := make([]byte, 4*len(vals))
	for i, v := range vals {
		putF32(raw[4*i:], v)
	}
	rd := bytes.NewReader(raw)
	opt := szx.Options{ErrorBound: 1e-3}
	sc := getScratch(int64(len(raw))) // hold one scratch so the pool can't evict it mid-test
	defer putScratch(sc)

	run := func() {
		rd.Reset(raw)
		body, err := sc.readBody(rd, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		sc.f32 = bytesToF32(sc.f32, body)
		sc.c32.SetOptions(opt)
		if _, err := sc.c32.Compress(sc.f32); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the buffers
	if n := testing.AllocsPerRun(20, run); n > 0 {
		t.Fatalf("pooled compress path allocates %.1f times per request; want 0", n)
	}
}

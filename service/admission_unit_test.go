package service

import (
	"testing"
	"time"

	"repro/telemetry"
)

// TestAdmitCancelledWhileQueued pins the queued-cancel denial path at the
// admission layer. It cannot be driven through an HTTP/1.1 test server:
// net/http only starts the connection-watching background read once the
// request body has been consumed, and a handler parked in admission has
// not touched the body yet — so a client hang-up while queued goes
// unnoticed until the queue wait expires. The layer's contract still
// holds and is asserted here directly: when done fires, the request is
// denied with 499/cancelled, the cancel counter moves, and the
// queue-depth and in-flight gauges return to baseline.
func TestAdmitCancelledWhileQueued(t *testing.T) {
	telemetry.Reset()
	defer telemetry.Reset()
	a := newAdmission(1, 4, 10*time.Second)

	release, den := a.admit(nil, "")
	if den != nil {
		t.Fatalf("first admit denied: %+v", den)
	}

	done := make(chan struct{})
	denCh := make(chan *denial, 1)
	go func() {
		rel, d := a.admit(done, "")
		if rel != nil {
			rel()
		}
		denCh <- d
	}()

	deadline := time.Now().Add(5 * time.Second)
	for telemetry.ServiceQueueDepth.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second admit never queued")
		}
		time.Sleep(time.Millisecond)
	}
	before := telemetry.ServiceCancelledRequests.Load()
	close(done)

	d := <-denCh
	if d == nil {
		t.Fatal("cancelled admit was granted a slot")
	}
	if d.status != statusClientClosedRequest || d.code != codeCancelled {
		t.Fatalf("denial = %+v, want status %d code %q", d, statusClientClosedRequest, codeCancelled)
	}
	if got := telemetry.ServiceCancelledRequests.Load(); got != before+1 {
		t.Fatalf("cancelled counter = %d, want %d", got, before+1)
	}
	// admit's deferred cleanup runs before it returns, so by the time the
	// denial is received the queue accounting must already be unwound.
	if depth := telemetry.ServiceQueueDepth.Load(); depth != 0 {
		t.Fatalf("queue depth = %d after cancelled denial, want 0", depth)
	}
	release()
	if inflight := telemetry.ServiceInFlight.Load(); inflight != 0 {
		t.Fatalf("in-flight gauge = %d after release, want 0", inflight)
	}
}

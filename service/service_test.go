package service_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	szx "repro"
	"repro/service"
	"repro/service/client"
	"repro/telemetry"
)

// testField synthesizes a smooth field, the shape the codec is built for.
func testField(n int, seed int64) []float32 {
	out := make([]float32, n)
	for i := range out {
		x := float64(i) * 0.01
		out[i] = float32(math.Sin(x+float64(seed)) + 0.2*math.Cos(3*x))
	}
	return out
}

func f32Bytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *client.Client, string) {
	t.Helper()
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, client.New(ts.URL), ts.URL
}

func TestServiceRoundTripFloat32(t *testing.T) {
	_, c, _ := newTestServer(t, service.Config{})
	ctx := context.Background()
	vals := testField(50_000, 1)

	comp, err := c.Compress(ctx, vals, client.Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= 4*len(vals) {
		t.Fatalf("no compression: %d bytes for %d values", len(comp), len(vals))
	}
	// The service stream must be a perfectly ordinary SZx stream.
	local, err := szx.Decompress(comp)
	if err != nil {
		t.Fatalf("service output not locally decodable: %v", err)
	}
	got, err := c.Decompress(ctx, comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) || len(local) != len(vals) {
		t.Fatalf("length mismatch: %d / %d, want %d", len(got), len(local), len(vals))
	}
	for i := range vals {
		if math.Abs(float64(got[i])-float64(vals[i])) > 1e-3*1.0001 {
			t.Fatalf("value %d out of bound: %v vs %v", i, got[i], vals[i])
		}
		if got[i] != local[i] {
			t.Fatalf("remote and local decode disagree at %d", i)
		}
	}
}

func TestServiceRoundTripFloat64(t *testing.T) {
	_, c, _ := newTestServer(t, service.Config{})
	ctx := context.Background()
	vals := make([]float64, 20_000)
	for i := range vals {
		vals[i] = math.Sin(float64(i) * 0.001)
	}
	comp, err := c.CompressFloat64(ctx, vals, client.Params{ErrorBound: 1e-6, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecompressFloat64(ctx, comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("length mismatch: %d want %d", len(got), len(vals))
	}
	for i := range vals {
		if math.Abs(got[i]-vals[i]) > 1e-6*1.0001 {
			t.Fatalf("value %d out of bound: %v vs %v", i, got[i], vals[i])
		}
	}
}

func TestServiceStreamRoundTrip(t *testing.T) {
	_, c, _ := newTestServer(t, service.Config{ChunkValues: 4096, StreamParallelism: 2})
	ctx := context.Background()
	vals := testField(100_000, 2)
	raw := f32Bytes(vals)

	rc, err := c.StreamCompress(ctx, bytes.NewReader(raw), client.Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	container, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	// The container must be readable by the library's own stream reader.
	if _, err := szx.NewReader(bytes.NewReader(container)).ReadAll(); err != nil {
		t.Fatalf("service container not locally readable: %v", err)
	}

	rc, err = c.StreamDecompress(ctx, bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	rawOut, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(rawOut) != len(raw) {
		t.Fatalf("stream round trip length: %d want %d", len(rawOut), len(raw))
	}
	for i := 0; i < len(rawOut); i += 4 {
		got := math.Float32frombits(binary.LittleEndian.Uint32(rawOut[i:]))
		if math.Abs(float64(got)-float64(vals[i/4])) > 1e-3*1.0001 {
			t.Fatalf("value %d out of bound: %v vs %v", i/4, got, vals[i/4])
		}
	}
}

// TestServiceDecompressAutoDetect feeds /v1/decompress an SZXS container
// (not a single stream) and expects it to notice and unpack it.
func TestServiceDecompressAutoDetect(t *testing.T) {
	_, c, _ := newTestServer(t, service.Config{})
	vals := testField(10_000, 3)
	var buf bytes.Buffer
	w := szx.NewWriter(&buf, szx.Options{ErrorBound: 1e-3}, 1024)
	if err := w.Write(vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(context.Background(), buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("length %d want %d", len(got), len(vals))
	}
}

func TestServiceCorruptInputIsClean4xx(t *testing.T) {
	_, c, baseURL := newTestServer(t, service.Config{})
	ctx := context.Background()

	_, err := c.Decompress(ctx, []byte("this is not a compressed stream"))
	var se *client.Error
	if !errors.As(err, &se) {
		t.Fatalf("want *client.Error, got %v", err)
	}
	if se.Status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", se.Status)
	}
	if !errors.Is(err, szx.ErrCorrupt) {
		t.Fatalf("corrupt-stream error should unwrap to szx.ErrCorrupt, got %v", err)
	}

	// A truncated SZXS container must also come back 4xx with frame context.
	vals := testField(5_000, 4)
	var buf bytes.Buffer
	w := szx.NewWriter(&buf, szx.Options{ErrorBound: 1e-3}, 512)
	_ = w.Write(vals)
	_ = w.Close()
	_, err = c.Decompress(ctx, buf.Bytes()[:buf.Len()/2])
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("truncated container: want 400, got %v", err)
	}

	// Bad parameters are bad_request, not corrupt. The client refuses to
	// send an invalid bound, so hit the endpoint with a raw query.
	resp, err := http.Post(baseURL+"/v1/compress?e=-1", "application/octet-stream",
		bytes.NewReader(f32Bytes(vals[:64])))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative bound: status %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(body, []byte(`"bad_request"`)) {
		t.Fatalf("negative bound: body %s missing bad_request code", body)
	}
}

// holdRequest starts a /v1/compress request whose body stays open, pinning
// one execution slot, and waits until the server reports `want` in flight.
// The returned release func completes the request; it is idempotent, so
// deferring it alongside an explicit call is safe.
func holdRequest(t *testing.T, baseURL string, srv *service.Server, want int) (release func()) {
	t.Helper()
	pr, pw := io.Pipe()
	errCh := make(chan error, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/compress", pr)
		if err != nil {
			errCh <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	// A few payload bytes so the held request is a valid (non-empty) body.
	if _, err := pw.Write(f32Bytes(testField(16, 9))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight() < want {
		if time.Now().After(deadline) {
			t.Fatalf("request never admitted: in-flight %d, want %d", srv.InFlight(), want)
		}
		time.Sleep(time.Millisecond)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			pw.Close()
			if err := <-errCh; err != nil {
				t.Errorf("held request failed: %v", err)
			}
		})
	}
}

func TestServiceOverloadSheds429(t *testing.T) {
	telemetry.Reset()
	srv := service.New(service.Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)

	release := holdRequest(t, ts.URL, srv, 1)
	defer release()

	// Fill the one queue slot with a second held request.
	qr, qw := io.Pipe()
	qDone := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/compress", qr)
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		qDone <- err
	}()
	if _, err := qw.Write(f32Bytes(testField(16, 10))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for telemetry.ServiceQueueDepth.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue is now full: the next request must be shed immediately.
	start := time.Now()
	_, err := c.Compress(context.Background(), testField(64, 11), client.Params{})
	elapsed := time.Since(start)
	var se *client.Error
	if !errors.As(err, &se) {
		t.Fatalf("want *client.Error, got %v", err)
	}
	if se.Status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", se.Status)
	}
	if !se.Retryable() {
		t.Fatal("429 must be Retryable")
	}
	if se.RetryAfter <= 0 {
		t.Fatal("429 must carry Retry-After")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("shed took %v; queue-full rejection must not wait", elapsed)
	}
	if telemetry.ServiceRejectedQueueFull.Load() == 0 {
		t.Fatal("queue-full rejection not counted")
	}

	// Unwind: release the in-flight request, then the queued one drains too.
	release()
	qw.Close()
	if err := <-qDone; err != nil {
		t.Errorf("queued request failed: %v", err)
	}
}

func TestServiceMidRequestCancellation(t *testing.T) {
	telemetry.Reset()
	srv := service.New(service.Config{ChunkValues: 1024, StreamParallelism: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)

	// Warm up a connection, then measure the goroutine baseline.
	if _, err := c.Compress(context.Background(), testField(64, 5), client.Params{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	errCh := make(chan error, 1)
	go func() {
		rc, err := c.StreamCompress(ctx, pr, client.Params{ErrorBound: 1e-3})
		if err == nil {
			_, err = io.Copy(io.Discard, rc)
			rc.Close()
		}
		errCh <- err
	}()
	// Feed a few chunks so the pipeline is genuinely mid-flight, then hang up.
	chunk := f32Bytes(testField(4096, 6))
	for i := 0; i < 4; i++ {
		if _, err := pw.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	// Unblock the transport's body-copy goroutine: Do cannot return from a
	// cancelled round trip while the request body read is still pending.
	pw.CloseWithError(context.Canceled)
	if err := <-errCh; err == nil {
		t.Fatal("cancelled stream reported success")
	}

	// The server side must unwind completely: slot released, pipeline
	// goroutines joined.
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight stuck at %d after cancel", srv.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
	waitGoroutines(t, baseline)
}

func TestServiceGracefulDrain(t *testing.T) {
	telemetry.Reset()
	srv := service.New(service.Config{MaxInFlight: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)

	release := holdRequest(t, ts.URL, srv, 1)

	if err := c.Ready(context.Background()); err != nil {
		t.Fatalf("ready before drain: %v", err)
	}
	srv.BeginDrain()
	if err := c.Ready(context.Background()); err == nil {
		t.Fatal("readyz must fail once draining")
	}

	// New work is refused with 503 draining while the held request runs on.
	_, err := c.Compress(context.Background(), testField(64, 7), client.Params{})
	var se *client.Error
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("during drain: want 503, got %v", err)
	}
	if !se.Retryable() {
		t.Fatal("503 during drain must be Retryable")
	}
	if srv.InFlight() != 1 {
		t.Fatalf("drain must not kill in-flight work (in-flight = %d)", srv.InFlight())
	}

	// Finish the held request; Drain must then return promptly.
	go func() {
		time.Sleep(50 * time.Millisecond)
		release()
	}()
	ctx, cancelDrain := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelDrain()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if srv.InFlight() != 0 {
		t.Fatalf("in-flight after drain: %d", srv.InFlight())
	}
	if telemetry.ServiceRejectedDraining.Load() == 0 {
		t.Fatal("draining rejection not counted")
	}
}

// TestServiceMetricsExposed checks that a round trip shows up on /metrics.
func TestServiceMetricsExposed(t *testing.T) {
	telemetry.Reset()
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)

	comp, err := c.Compress(context.Background(), testField(1000, 8), client.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(context.Background(), comp); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`szx_service_requests_total{endpoint="compress"} 1`,
		`szx_service_requests_total{endpoint="decompress"} 1`,
		`szx_service_bytes_in_total`,
		`szx_service_in_flight 0`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// waitGoroutines polls until the goroutine count settles back to the
// baseline (same helper the pipeline leak tests use).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", n, baseline,
				buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServiceFixedRatio(t *testing.T) {
	_, c, _ := newTestServer(t, service.Config{})
	ctx := context.Background()
	vals := testField(50_000, 3)

	comp, err := c.Compress(ctx, vals, client.Params{TargetRatio: 6})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(4*len(vals)) / float64(len(comp))
	if ratio < 4 || ratio > 9 {
		t.Fatalf("achieved ratio %.2f nowhere near target 6", ratio)
	}
	// The converged bound is recorded in the stream header.
	h, err := szx.Info(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !(h.ErrBound > 0) {
		t.Fatalf("stream carries no effective bound: %v", h.ErrBound)
	}
	got, err := c.Decompress(ctx, comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Abs(float64(got[i])-float64(vals[i])) > h.ErrBound*1.0001 {
			t.Fatalf("value %d breaks the recorded bound %g: %v vs %v", i, h.ErrBound, got[i], vals[i])
		}
	}
}

func TestServiceFixedRatioStream(t *testing.T) {
	_, c, _ := newTestServer(t, service.Config{ChunkValues: 8192})
	ctx := context.Background()
	vals := testField(60_000, 5)

	rc, err := c.StreamCompress(ctx, bytes.NewReader(f32Bytes(vals)), client.Params{TargetRatio: 5})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	sr := szx.NewReader(bytes.NewReader(comp))
	got := make([]float32, 0, len(vals))
	buf := make([]float32, 4096)
	for {
		n, rerr := sr.Read(buf)
		got = append(got, buf[:n]...)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			t.Fatal(rerr)
		}
	}
	if len(got) != len(vals) {
		t.Fatalf("stream roundtrip length %d want %d", len(got), len(vals))
	}
	ratio := float64(4*len(vals)) / float64(len(comp))
	if ratio < 3 || ratio > 8 {
		t.Fatalf("streamed ratio %.2f nowhere near target 5", ratio)
	}
}

func TestServiceBadOptionsIs400(t *testing.T) {
	_, c, base := newTestServer(t, service.Config{})
	ctx := context.Background()
	vals := testField(1024, 9)

	// Sub-1 ratio: rejected by szx validation, surfaced as bad_options and
	// unwrapped by the client back to the szx sentinel.
	_, err := c.Compress(ctx, vals, client.Params{TargetRatio: 0.5})
	if err == nil {
		t.Fatal("ratio 0.5 accepted")
	}
	var se *client.Error
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not *client.Error", err)
	}
	if se.Status != http.StatusBadRequest || se.Code != "bad_options" {
		t.Fatalf("got status %d code %q, want 400 bad_options", se.Status, se.Code)
	}
	if !errors.Is(err, szx.ErrBadOptions) {
		t.Fatalf("client error does not unwrap to szx.ErrBadOptions: %v", err)
	}

	// ratio + explicit bound conflict is caught at parse time.
	resp, err := http.Post(base+"/v1/compress?ratio=4&e=1e-3", "application/octet-stream",
		bytes.NewReader(f32Bytes(vals)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ratio+e conflict: got %d want 400", resp.StatusCode)
	}

	// Streaming endpoint rejects bad options with a clean 400 before any
	// container bytes flow.
	resp, err = http.Post(base+"/v1/stream/compress?ratio=0.5", "application/octet-stream",
		bytes.NewReader(f32Bytes(vals)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stream bad ratio: got %d want 400", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/json; charset=utf-8" {
		t.Fatalf("stream bad ratio: content type %q, want JSON error body", got)
	}
}

package service_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	szx "repro"
	"repro/service"
	"repro/service/client"
)

// TestClientBatch drives the batch endpoints through the client package:
// positional results, per-array errors that unwrap to szx sentinels, and a
// full round trip.
func TestClientBatch(t *testing.T) {
	_, c, _ := newTestServer(t, service.Config{})
	ctx := context.Background()
	arrays := [][]float32{testField(2048, 1), testField(300, 2), testField(4096, 3)}

	results, err := c.CompressBatch(ctx, arrays, client.Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	comps := make([][]byte, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("array %d: %v", i, r.Err)
		}
		comps[i] = r.Comp
	}

	// Corrupt the middle stream: its array must fail alone, with the szx
	// sentinel reachable through errors.Is and the index preserved.
	comps[1] = []byte("definitely not a stream")
	vals, err := c.DecompressBatch(ctx, comps, client.Params{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range vals {
		if i == 1 {
			if r.Err == nil {
				t.Fatal("corrupt array decoded successfully")
			}
			var ae *client.ArrayError
			if !errors.As(r.Err, &ae) || ae.Index != 1 {
				t.Fatalf("array 1 error %v lacks positional context", r.Err)
			}
			if !errors.Is(r.Err, szx.ErrCorrupt) {
				t.Fatalf("array 1 error %v does not unwrap to ErrCorrupt", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("array %d: %v", i, r.Err)
		}
		if len(r.Values) != len(arrays[i]) {
			t.Fatalf("array %d: %d values back, want %d", i, len(r.Values), len(arrays[i]))
		}
	}
}

// TestClientCoalescing: with coalescing on, concurrent small Compress calls
// share batch requests — the one-shot endpoint sees no traffic — and every
// caller still gets a stream identical to its own one-shot result.
func TestClientCoalescing(t *testing.T) {
	srv := service.New(service.Config{})
	var oneShot, batches atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/compress":
			oneShot.Add(1)
		case "/v1/batch/compress":
			batches.Add(1)
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	const callers = 8
	c := client.New(ts.URL, client.WithCoalescing(20*time.Millisecond, callers, 64<<10))
	plain := client.New(ts.URL)
	p := client.Params{ErrorBound: 1e-3}

	arrays := make([][]float32, callers)
	for i := range arrays {
		arrays[i] = testField(1024, int64(i))
	}
	got := make([][]byte, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = c.Compress(context.Background(), arrays[i], p)
		}(i)
	}
	wg.Wait()
	// Snapshot before the verification loop below drives its own one-shot
	// traffic through the same counting handler.
	leaked, coalesced := oneShot.Load(), batches.Load()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		want, err := plain.Compress(context.Background(), arrays[i], p)
		if err != nil {
			t.Fatal(err)
		}
		if string(got[i]) != string(want) {
			t.Fatalf("caller %d: coalesced stream differs from one-shot", i)
		}
	}
	if leaked != 0 {
		t.Fatalf("%d calls leaked to the one-shot endpoint", leaked)
	}
	if coalesced < 1 || coalesced >= callers {
		t.Fatalf("%d batch requests for %d callers; want coalescing (1..%d)", coalesced, callers, callers-1)
	}
}

// TestClientCoalescingLargeBypass: payloads over maxArrayBytes skip the
// coalescer and go one-shot.
func TestClientCoalescingLargeBypass(t *testing.T) {
	srv := service.New(service.Config{})
	var oneShot atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/compress" {
			oneShot.Add(1)
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	c := client.New(ts.URL, client.WithCoalescing(time.Millisecond, 4, 1<<10))
	if _, err := c.Compress(context.Background(), testField(4096, 1), client.Params{ErrorBound: 1e-3}); err != nil {
		t.Fatal(err)
	}
	if oneShot.Load() != 1 {
		t.Fatalf("large payload did not bypass the coalescer (%d one-shot calls)", oneShot.Load())
	}
}

// BenchmarkClientRoundTrip4K measures the client-side cost of a 4 KiB
// compress round trip — the small-payload case the pooled body buffers,
// cached query strings, and recycled header maps exist for. ReportAllocs
// keeps the per-call allocation count honest.
func BenchmarkClientRoundTrip4K(b *testing.B) {
	srv := service.New(service.Config{DisableTracing: true})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	c := client.New(ts.URL)
	vals := testField(1024, 1) // 4 KiB
	p := client.Params{ErrorBound: 1e-3}
	ctx := context.Background()
	if _, err := c.Compress(ctx, vals, p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(4 * int64(len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(ctx, vals, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientBatchCompress4K is the batched counterpart: 64 4 KiB
// arrays per request, reported per-array.
func BenchmarkClientBatchCompress4K(b *testing.B) {
	srv := service.New(service.Config{DisableTracing: true})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	c := client.New(ts.URL)
	arrays := make([][]float32, 64)
	for i := range arrays {
		arrays[i] = testField(1024, int64(i))
	}
	p := client.Params{ErrorBound: 1e-3}
	ctx := context.Background()
	if _, err := c.CompressBatch(ctx, arrays, p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(64 * 4 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.CompressBatch(ctx, arrays, p)
		if err != nil {
			b.Fatal(err)
		}
		for j := range res {
			if res[j].Err != nil {
				b.Fatal(res[j].Err)
			}
		}
	}
}

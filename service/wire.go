package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	szx "repro"
	"repro/telemetry"
)

// Wire error codes. These are the service's stable vocabulary — the client
// package maps them back onto the szx sentinel errors, so a caller using
// the client library can errors.Is against szx.ErrCorrupt exactly as if
// the codec ran in-process.
const (
	codeBadRequest = "bad_request" // malformed parameters or payload shape
	codeBadOptions = "bad_options" // options rejected by szx validation (szx.ErrBadOptions)
	codeCorrupt    = "corrupt"     // stream failed validation during decode
	codeWrongType  = "wrong_type"  // f32 stream sent to f64 decode or vice versa
	codeTooLarge   = "too_large"   // body exceeds MaxBodyBytes
	codeOverloaded = "overloaded"  // shed by admission control (retryable)
	codeDraining   = "draining"    // server shutting down (retry elsewhere)
	codeCancelled  = "cancelled"   // client went away mid-request
	codeInternal   = "internal"    // anything we cannot blame on the client
)

// statusClientClosedRequest is nginx's non-standard 499: the client hung
// up before we produced a response. It never reaches the client (the
// connection is gone) but keeps access logs honest.
const statusClientClosedRequest = 499

// wireError is the JSON body of every non-2xx response from a data
// endpoint. Frame and Offset carry szx.FrameError context when decoding a
// streaming container fails partway.
type wireError struct {
	Code    string `json:"code"`
	Message string `json:"error"`
	Frame   int    `json:"frame,omitempty"`
	Offset  int64  `json:"offset,omitempty"`
}

// writeError emits a wireError response. It is a no-op if the handler has
// already begun streaming a body (headerWritten), in which case the only
// honest signal left is truncating the connection.
func writeError(w http.ResponseWriter, status int, we wireError, retryAfter time.Duration) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if retryAfter > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(we)
}

// retryAfterSeconds renders a duration as a Retry-After header value:
// whole seconds, rounded up to at least 1 so the hint is never "now".
func retryAfterSeconds(d time.Duration) string {
	secs := int(d.Seconds())
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// classify maps a codec/pipeline error onto (HTTP status, wire code),
// pulling frame/offset context out of a FrameError when present. The split
// is: client-attributable decode failures are 4xx, everything else is 5xx.
func classify(err error) (int, wireError) {
	we := wireError{Message: err.Error()}
	var fe *szx.FrameError
	if errors.As(err, &fe) {
		we.Frame = fe.Frame
		we.Offset = fe.Offset
	}
	switch {
	// ErrBadOptions first: an invalid option value (say a negative bound)
	// wraps both ErrBadOptions and the underlying sentinel, and the more
	// specific code wins.
	case errors.Is(err, szx.ErrBadOptions):
		we.Code = codeBadOptions
		return http.StatusBadRequest, we
	case errors.Is(err, szx.ErrWrongType):
		we.Code = codeWrongType
		return http.StatusBadRequest, we
	case errors.Is(err, szx.ErrBadMagic),
		errors.Is(err, szx.ErrBadVersion),
		errors.Is(err, szx.ErrCorrupt),
		errors.Is(err, szx.ErrStream):
		we.Code = codeCorrupt
		return http.StatusBadRequest, we
	case errors.Is(err, szx.ErrErrBound),
		errors.Is(err, szx.ErrBlockSize),
		errors.Is(err, szx.ErrDegenerateRange):
		we.Code = codeBadRequest
		return http.StatusBadRequest, we
	default:
		we.Code = codeInternal
		return http.StatusInternalServerError, we
	}
}

// fail classifies err, counts it, and writes the error response.
func fail(w http.ResponseWriter, err error) {
	status, we := classify(err)
	if status < 500 {
		telemetry.ServiceBadRequests.Inc()
	}
	writeError(w, status, we, 0)
}

// badRequest writes a 400 with codeBadRequest for parameter-level problems
// detected before the codec ever runs.
func badRequest(w http.ResponseWriter, msg string) {
	telemetry.ServiceBadRequests.Inc()
	writeError(w, http.StatusBadRequest, wireError{Code: codeBadRequest, Message: msg}, 0)
}

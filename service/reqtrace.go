package service

import (
	"net/http"
	"time"

	"repro/telemetry"
	"repro/telemetry/trace"
)

// TraceIDHeader is the response header carrying the request's trace ID —
// the handle for looking the request up at /debug/requests?trace_id=...
// It is set before admission, so even shed (429/503) responses carry it.
const TraceIDHeader = "Szx-Trace-Id"

// traceparentHeader is the W3C-style request header a caller uses to
// supply its own trace ID (version-00 format; see telemetry/trace).
const traceparentHeader = "Traceparent"

// statusWriter records the response status and body size as they pass
// through, so the trace and access log can report what was actually sent.
// Unwrap lets http.ResponseController reach the real writer (the streaming
// handlers need EnableFullDuplex and, on HTTP/1.x, flushing).
type statusWriter struct {
	rw     http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) Header() http.Header { return w.rw.Header() }

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.rw.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.rw.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.rw }

// reqScope carries one admitted request's cross-cutting state: its trace,
// the status-recording writer, and the admission release. Handlers defer
// end() and route failures through fail/badRequest so the trace captures
// the error text.
type reqScope struct {
	srv     *Server
	tr      *trace.Trace // nil when tracing is disabled
	sw      *statusWriter
	release func()
	start   time.Time
}

// begin runs the request-scoped preamble for a data endpoint: start (or
// adopt) a trace, run admission — recording the wait as the queue_wait
// span — and count the request. On denial it writes the error response and
// finishes the trace itself, returning ok=false. On success the returned
// writer and request (trace-wrapped) replace the originals, and the caller
// must defer sc.end().
func (s *Server) begin(w http.ResponseWriter, r *http.Request, reqs *telemetry.Counter, name string) (sc *reqScope, ww http.ResponseWriter, rr *http.Request, ok bool) {
	var tr *trace.Trace
	if s.rec != nil {
		tr = trace.FromTraceparent(name, r.Header.Get(traceparentHeader))
		w.Header().Set(TraceIDHeader, tr.ID())
		r = r.WithContext(trace.NewContext(r.Context(), tr))
	}
	admT0 := time.Now()
	release, den := s.adm.admit(r.Context().Done(), tr.ID())
	tr.RecordSpan("queue_wait", admT0, time.Now())
	if den != nil {
		writeError(w, den.status, wireError{Code: den.code, Message: den.msg}, den.retryAfter)
		if tr != nil {
			tr.SetStatus(den.status)
			tr.SetError(den.msg)
			tr.Finish(s.rec)
			s.logAccess(tr, den.status, 0)
		}
		return nil, w, r, false
	}
	reqs.Inc()
	sw := &statusWriter{rw: w}
	sc = &reqScope{srv: s, tr: tr, sw: sw, release: release, start: time.Now()}
	return sc, sw, r, true
}

// end closes out an admitted request: release the execution slot, feed the
// duration histogram (with this trace as exemplar candidate), seal the
// trace with the response's actual status and size, offer it to the ring,
// and emit the access-log line.
func (sc *reqScope) end() {
	d := time.Since(sc.start)
	telemetry.ServiceRequestDurations.ObserveExemplar(d.Nanoseconds(), sc.tr.ID())
	sc.release()
	if sc.tr == nil {
		return
	}
	status := sc.sw.status
	if status == 0 {
		status = http.StatusOK
	}
	sc.tr.SetStatus(status)
	sc.tr.SetBytes(-1, sc.sw.bytes)
	sc.tr.Finish(sc.srv.rec)
	sc.srv.logAccess(sc.tr, status, sc.sw.bytes)
}

// fail and badRequest mirror the package-level helpers while also pinning
// the error text on the trace (error-marked traces are always retained).
func (sc *reqScope) fail(w http.ResponseWriter, err error) {
	sc.tr.SetError(err.Error())
	fail(w, err)
}

func (sc *reqScope) badRequest(w http.ResponseWriter, msg string) {
	sc.tr.SetError(msg)
	badRequest(w, msg)
}

// writeF32 / writeF64 wrap the package-level response writers in a
// write_response span (which covers both the little-endian staging and the
// socket write).
func (sc *reqScope) writeF32(w http.ResponseWriter, scr *scratch, vals []float32) {
	sp := sc.tr.StartSpan("write_response")
	writeF32(w, scr, vals)
	sp.End()
}

func (sc *reqScope) writeF64(w http.ResponseWriter, scr *scratch, vals []float64) {
	sp := sc.tr.StartSpan("write_response")
	writeF64(w, scr, vals)
	sp.End()
}

// logAccess emits one structured access-log line for a finished request.
func (s *Server) logAccess(tr *trace.Trace, status int, bytesOut int64) {
	if s.alog == nil || tr == nil {
		return
	}
	s.alog.Info("request",
		"trace_id", tr.ID(),
		"endpoint", tr.Name(),
		"status", status,
		"bytes_out", bytesOut,
		"dur_us", tr.Duration().Microseconds(),
		"queue_wait_us", tr.SpanDur("queue_wait").Microseconds(),
		"stages", tr.StageSummary(),
	)
}

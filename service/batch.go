package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"slices"
	"sync"

	szx "repro"
	"repro/internal/wireconv"
	"repro/telemetry"
)

// Batch endpoints: POST /v1/batch/compress and /v1/batch/decompress carry
// many independent arrays in one HTTP request, so small payloads amortize
// the per-request fixed costs (round trip, admission, scratch lease, engine
// fan-out) across the whole batch. One request takes ONE admission slot and
// ONE pooled scratch, and the arrays ride the codec's work-stealing queue
// as work items via szx.CompressBatch/DecompressBatch.
//
// Wire format (SZXB), little-endian throughout:
//
//	request:  "SZXB" | u8 version=1 | u32 count | count × (u32 len | payload)
//	response: "SZXB" | u8 version=1 | u32 count | count × (u8 status | u32 len | payload)
//
// A response entry's status is 0 (ok: payload is the result bytes) or 1
// (error: payload is a JSON object {"code","error","index"} — the same code
// vocabulary as one-shot wire errors, plus the array's position). Per-array
// failures leave the batch a 200: one corrupt array never fails its
// neighbours. Only envelope-level problems (bad magic/version, truncated
// framing, empty batch, count over MaxBatchArrays, bad query parameters)
// fail the whole request with a 4xx.

const (
	batchMagic   = "SZXB"
	batchVersion = 1
	// batchHeaderLen is magic + version + count.
	batchHeaderLen = len(batchMagic) + 1 + 4
)

// batchError is the JSON payload of a failed response entry. It is distinct
// from wireError because Index must always serialize — omitempty would drop
// array 0 — and positional context replaces frame/offset.
type batchError struct {
	Code    string `json:"code"`
	Message string `json:"error"`
	Index   int    `json:"index"`
}

// batchScratch is the per-request working set for batch endpoints: the
// positional slices the batch API fills. Pooled separately from scratch
// because only batch requests pay for it. The per-array out/value buffers
// keep their capacity across leases, so a warm batch request allocates
// nothing beyond what the codec itself needs.
type batchScratch struct {
	views [][]byte // request payload views into the (pooled) body buffer
	outs  [][]byte // per-array compressed results, capacity reused
	errs  []error
	f32s  [][]float32
	f64s  [][]float64
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func getBatchScratch() *batchScratch { return batchPool.Get().(*batchScratch) }

func putBatchScratch(bs *batchScratch) {
	// The views alias the body buffer of a scratch that is being returned to
	// its own pool; clearing them keeps this pool from pinning that one.
	clear(bs.views)
	clear(bs.errs)
	batchPool.Put(bs)
}

// growViews resizes a positional slice to n, reusing the backing array (and
// any per-element buffer capacity) of a warm scratch.
func growViews[S any](s []S, n int) []S {
	return slices.Grow(s[:0], n)[:n]
}

// parseBatchFrames validates the SZXB envelope and returns per-array
// payload views into body (no copying). Any error here condemns the whole
// request — past this point failures are per-array.
func parseBatchFrames(views [][]byte, body []byte, maxArrays int) ([][]byte, error) {
	if len(body) < batchHeaderLen {
		return views[:0], fmt.Errorf("batch body too short for the SZXB header (%d bytes)", len(body))
	}
	if string(body[:4]) != batchMagic {
		return views[:0], fmt.Errorf("bad batch magic %q (want %q)", body[:4], batchMagic)
	}
	if body[4] != batchVersion {
		return views[:0], fmt.Errorf("unsupported batch version %d (want %d)", body[4], batchVersion)
	}
	count := int(binary.LittleEndian.Uint32(body[5:9]))
	if count == 0 {
		return views[:0], fmt.Errorf("empty batch")
	}
	if count > maxArrays {
		return views[:0], fmt.Errorf("batch of %d arrays exceeds the %d-array limit", count, maxArrays)
	}
	views = growViews(views, count)
	off := batchHeaderLen
	for i := 0; i < count; i++ {
		if len(body)-off < 4 {
			return views[:0], fmt.Errorf("batch truncated in array %d's length prefix", i)
		}
		n := int(binary.LittleEndian.Uint32(body[off : off+4]))
		off += 4
		if len(body)-off < n {
			return views[:0], fmt.Errorf("batch truncated in array %d: frame declares %d bytes, %d remain", i, n, len(body)-off)
		}
		views[i] = body[off : off+n]
		off += n
	}
	if off != len(body) {
		return views[:0], fmt.Errorf("%d trailing bytes after the last array", len(body)-off)
	}
	return views, nil
}

// appendBatchHeader starts a response (or request — the client package
// builds the same envelope) in out.
func appendBatchHeader(out []byte, count int) []byte {
	out = append(out, batchMagic...)
	out = append(out, batchVersion)
	return binary.LittleEndian.AppendUint32(out, uint32(count))
}

// appendBatchOK appends a status-0 response entry carrying payload.
func appendBatchOK(out, payload []byte) []byte {
	out = append(out, 0)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...)
}

// appendBatchErr appends a status-1 response entry carrying be as JSON.
func appendBatchErr(out []byte, be batchError) []byte {
	msg, err := json.Marshal(be)
	if err != nil { // a struct of strings and an int cannot fail to marshal
		msg = []byte(`{"code":"internal","error":"error encoding failed"}`)
	}
	out = append(out, 1)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(msg)))
	return append(out, msg...)
}

// batchOptions parses the shared query options and applies the batch
// default: unless the request pins ?workers=, a batch runs at the server's
// worker cap — the whole point of batching is one wide engine pass.
func (s *Server) batchOptions(r *http.Request) (szx.Options, int, error) {
	q := r.URL.Query()
	opt, elemSize, err := s.parseOptions(q)
	if err != nil {
		return opt, elemSize, err
	}
	if q.Get("workers") == "" {
		opt.Workers = s.cfg.MaxWorkers
	}
	return opt, elemSize, nil
}

// handleBatchCompress runs a whole SZXB batch of raw float arrays through
// one engine pass and returns an SZXB batch of SZx streams.
func (s *Server) handleBatchCompress(w http.ResponseWriter, r *http.Request) {
	rq, w, r, ok := s.begin(w, r, &telemetry.ServiceRequestsBatchCompress, "batch_compress")
	if !ok {
		return
	}
	defer rq.end()

	opt, elemSize, err := s.batchOptions(r)
	if err != nil {
		rq.badRequest(w, err.Error())
		return
	}
	sc := getScratch(r.ContentLength)
	defer putScratch(sc)
	body := readRequestBody(w, r, sc, s.cfg.MaxBodyBytes, rq.tr)
	if body == nil {
		return
	}
	bs := getBatchScratch()
	defer putBatchScratch(bs)

	sp := rq.tr.StartSpan("parse_frames")
	bs.views, err = parseBatchFrames(bs.views, body, s.cfg.MaxBatchArrays)
	sp.End()
	if err != nil {
		rq.badRequest(w, err.Error())
		return
	}
	n := len(bs.views)
	telemetry.BatchArrays.Add(int64(n))
	telemetry.BatchArraysPerRequest.Observe(int64(n))
	for _, v := range bs.views {
		telemetry.BatchArrayBytes.Observe(int64(len(v)))
	}

	// Unpack every aligned array into one flat value buffer and hand the
	// batch API subslice views; misaligned arrays get a nil array here and a
	// per-array bad_request below, never a whole-batch failure.
	sp = rq.tr.StartSpan("unpack_body")
	if elemSize == 4 {
		bs.f32s = growViews(bs.f32s, n)
		total := 0
		for _, v := range bs.views {
			total += len(v) / 4
		}
		flat := sc.f32[:0]
		if cap(flat) < total {
			flat = make([]float32, total)
		}
		flat = flat[:total]
		sc.f32 = flat
		off := 0
		for i, v := range bs.views {
			if len(v)%4 != 0 {
				bs.f32s[i] = nil
				continue
			}
			arr := flat[off : off+len(v)/4]
			wireconv.DecodeF32(arr, v)
			bs.f32s[i] = arr
			off += len(arr)
		}
		sp.End()
		sp = rq.tr.StartSpan("compress_batch")
		bs.outs, bs.errs = szx.CompressBatch(bs.outs, bs.errs, bs.f32s, opt)
		sp.End()
		clear(bs.f32s) // views into the pooled scratch buffer; don't pin it
	} else {
		bs.f64s = growViews(bs.f64s, n)
		total := 0
		for _, v := range bs.views {
			total += len(v) / 8
		}
		flat := sc.f64[:0]
		if cap(flat) < total {
			flat = make([]float64, total)
		}
		flat = flat[:total]
		sc.f64 = flat
		off := 0
		for i, v := range bs.views {
			if len(v)%8 != 0 {
				bs.f64s[i] = nil
				continue
			}
			arr := flat[off : off+len(v)/8]
			wireconv.DecodeF64(arr, v)
			bs.f64s[i] = arr
			off += len(arr)
		}
		sp.End()
		sp = rq.tr.StartSpan("compress_batch")
		bs.outs, bs.errs = szx.CompressBatch(bs.outs, bs.errs, bs.f64s, opt)
		sp.End()
		clear(bs.f64s)
	}

	out := appendBatchHeader(sc.out[:0], n)
	failed := 0
	for i := 0; i < n; i++ {
		switch {
		case len(bs.views[i])%elemSize != 0:
			failed++
			out = appendBatchErr(out, batchError{
				Code: codeBadRequest,
				Message: fmt.Sprintf("array length %d is not a multiple of the %d-byte element size",
					len(bs.views[i]), elemSize),
				Index: i,
			})
		case bs.errs[i] != nil:
			failed++
			_, we := classify(bs.errs[i])
			out = appendBatchErr(out, batchError{Code: we.Code, Message: we.Message, Index: i})
		default:
			out = appendBatchOK(out, bs.outs[i])
		}
	}
	sc.out = out
	telemetry.BatchArrayErrors.Add(int64(failed))
	sp = rq.tr.StartSpan("write_response")
	writeBinary(w, out)
	sp.End()
}

// handleBatchDecompress runs an SZXB batch of SZx streams through one
// engine pass and returns an SZXB batch of raw little-endian float arrays.
// Each stream must match the batch's element type (?t=); SZXS streaming
// containers are not batchable and fail their array as corrupt.
func (s *Server) handleBatchDecompress(w http.ResponseWriter, r *http.Request) {
	rq, w, r, ok := s.begin(w, r, &telemetry.ServiceRequestsBatchDecompress, "batch_decompress")
	if !ok {
		return
	}
	defer rq.end()

	opt, elemSize, err := s.batchOptions(r)
	if err != nil {
		rq.badRequest(w, err.Error())
		return
	}
	sc := getScratch(r.ContentLength)
	defer putScratch(sc)
	body := readRequestBody(w, r, sc, s.cfg.MaxBodyBytes, rq.tr)
	if body == nil {
		return
	}
	bs := getBatchScratch()
	defer putBatchScratch(bs)

	sp := rq.tr.StartSpan("parse_frames")
	bs.views, err = parseBatchFrames(bs.views, body, s.cfg.MaxBatchArrays)
	sp.End()
	if err != nil {
		rq.badRequest(w, err.Error())
		return
	}
	n := len(bs.views)
	telemetry.BatchArrays.Add(int64(n))
	telemetry.BatchArraysPerRequest.Observe(int64(n))
	for _, v := range bs.views {
		telemetry.BatchArrayBytes.Observe(int64(len(v)))
	}

	out := appendBatchHeader(sc.out[:0], n)
	failed := 0
	sp = rq.tr.StartSpan("decompress_batch")
	if elemSize == 4 {
		bs.f32s, bs.errs = szx.DecompressBatch(bs.f32s, bs.errs, bs.views, opt.Workers)
		sp.End()
		for i := 0; i < n; i++ {
			if bs.errs[i] != nil {
				failed++
				_, we := classify(bs.errs[i])
				out = appendBatchErr(out, batchError{Code: we.Code, Message: we.Message, Index: i})
				continue
			}
			vals := bs.f32s[i]
			out = append(out, 0)
			out = binary.LittleEndian.AppendUint32(out, uint32(4*len(vals)))
			out = wireconv.AppendF32(out, vals)
		}
	} else {
		bs.f64s, bs.errs = szx.DecompressBatch(bs.f64s, bs.errs, bs.views, opt.Workers)
		sp.End()
		for i := 0; i < n; i++ {
			if bs.errs[i] != nil {
				failed++
				_, we := classify(bs.errs[i])
				out = appendBatchErr(out, batchError{Code: we.Code, Message: we.Message, Index: i})
				continue
			}
			vals := bs.f64s[i]
			out = append(out, 0)
			out = binary.LittleEndian.AppendUint32(out, uint32(8*len(vals)))
			out = wireconv.AppendF64(out, vals)
		}
	}
	sc.out = out
	telemetry.BatchArrayErrors.Add(int64(failed))
	sp = rq.tr.StartSpan("write_response")
	writeBinary(w, out)
	sp.End()
}

// End-to-end cluster tests: real service.Servers on real listeners, a
// ClusterClient routing across them, and the failure modes the subsystem
// exists for — a node dying abruptly under load, and hedged/routed
// responses that must stay byte-identical to single-node ones.
//
// This is an external test package (cluster_test) so it can import the
// service and client packages without a cycle.
package cluster_test

import (
	"bytes"
	"context"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/service"
	"repro/service/client"
	"repro/service/cluster"
)

// node is one in-process szxd: a service.Server behind its own
// http.Server, so tests can terminate it abruptly (Close resets active
// connections — the in-process analogue of SIGKILL) instead of only
// gracefully.
type node struct {
	srv *service.Server
	hs  *http.Server
	url string
}

func startNode(t *testing.T, cfg service.Config) *node {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := service.New(cfg)
	n := &node{
		srv: srv,
		hs:  &http.Server{Handler: srv.Handler()},
		url: "http://" + ln.Addr().String(),
	}
	go func() { _ = n.hs.Serve(ln) }()
	t.Cleanup(func() { _ = n.hs.Close() })
	return n
}

// kill terminates the node abruptly: the listener closes and every active
// connection is reset, exactly what clients of a SIGKILLed process see.
func (n *node) kill() { _ = n.hs.Close() }

func testField(n int, seed float32) []float32 {
	vals := make([]float32, n)
	for i := range vals {
		x := float64(i) * 0.01
		vals[i] = seed + float32(math.Sin(x)+0.25*math.Sin(13*x))
	}
	return vals
}

func startCluster(t *testing.T, n int) []*node {
	t.Helper()
	nodes := make([]*node, n)
	for i := range nodes {
		nodes[i] = startNode(t, service.Config{DisableTracing: true})
	}
	return nodes
}

func urls(nodes []*node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.url
	}
	return out
}

// TestClusterByteIdentity pins the routing layer's transparency: whatever
// policy routes a request, and even when a hedge races two replicas, the
// response bytes must equal what a single-node Client gets from one szxd.
func TestClusterByteIdentity(t *testing.T) {
	nodes := startCluster(t, 3)
	ctx := context.Background()
	vals := testField(1<<15, 1.5)
	p := client.Params{ErrorBound: 1e-3}

	single := client.New(nodes[0].url)
	want, err := single.Compress(ctx, vals, p)
	if err != nil {
		t.Fatalf("single-node compress: %v", err)
	}
	wantVals, err := single.Decompress(ctx, want)
	if err != nil {
		t.Fatalf("single-node decompress: %v", err)
	}

	cases := []struct {
		name string
		cfg  client.ClusterConfig
	}{
		{"hash", client.ClusterConfig{Policy: client.PolicyHash, Hedge: client.HedgePolicy{Disabled: true}}},
		{"least_loaded", client.ClusterConfig{Policy: client.PolicyLeastLoaded, Hedge: client.HedgePolicy{Disabled: true}}},
		{"ordered", client.ClusterConfig{Policy: client.PolicyOrdered, Hedge: client.HedgePolicy{Disabled: true}}},
		// A 1ns trigger forces a hedge on effectively every call: the race
		// between two replicas must still produce identical bytes.
		{"hedged", client.ClusterConfig{Policy: client.PolicyOrdered, Hedge: client.HedgePolicy{Delay: time.Nanosecond, Budget: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Nodes = urls(nodes)
			cfg.PollInterval = -1 // drive membership synchronously
			cc, err := client.NewCluster(cfg)
			if err != nil {
				t.Fatalf("NewCluster: %v", err)
			}
			defer cc.Close()
			cc.Membership().PollOnce(ctx)

			for i := range 8 {
				kctx := client.WithAffinityKey(ctx, string(rune('a'+i)))
				got, err := cc.Compress(kctx, vals, p)
				if err != nil {
					t.Fatalf("cluster compress (%d): %v", i, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("cluster compress (%d): %d bytes != single-node %d bytes", i, len(got), len(want))
				}
				gotVals, err := cc.Decompress(kctx, got)
				if err != nil {
					t.Fatalf("cluster decompress (%d): %v", i, err)
				}
				if len(gotVals) != len(wantVals) {
					t.Fatalf("cluster decompress (%d): %d values, want %d", i, len(gotVals), len(wantVals))
				}
				for j := range gotVals {
					if gotVals[j] != wantVals[j] {
						t.Fatalf("cluster decompress (%d): value %d = %v, want %v", i, j, gotVals[j], wantVals[j])
					}
				}
			}
		})
	}
}

// TestClusterSurvivesNodeKill is the acceptance-criterion e2e: a 3-node
// cluster under concurrent load loses one node abruptly (connection
// resets, then refusals — the client-visible shape of SIGKILL) and every
// request still succeeds, absorbed by retry and hedging; afterwards the
// membership layer has marked the node suspect/dead.
func TestClusterSurvivesNodeKill(t *testing.T) {
	nodes := startCluster(t, 3)
	cc, err := client.NewCluster(client.ClusterConfig{
		Nodes:        urls(nodes),
		Policy:       client.PolicyLeastLoaded,
		Hedge:        client.HedgePolicy{Delay: 50 * time.Millisecond, Budget: 1},
		Retry:        client.RetryPolicy{MaxAttempts: 5, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond},
		RetryBudget:  1,
		PollInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cc.Close()

	const (
		workers     = 8
		perWorker   = 24
		killAtTotal = workers * perWorker / 3
	)
	bound := 1e-3
	p := client.Params{ErrorBound: bound}
	var (
		started atomic.Int64
		killed  sync.Once
		wg      sync.WaitGroup
		errsMu  sync.Mutex
		errs    []error
	)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := testField(1<<14, float32(w))
			for i := range perWorker {
				if started.Add(1) == killAtTotal {
					killed.Do(nodes[1].kill)
				}
				comp, err := cc.Compress(ctx, vals, p)
				if err == nil {
					var got []float32
					got, err = cc.Decompress(ctx, comp)
					if err == nil {
						for j := range got {
							if d := float64(got[j] - vals[j]); d > bound || d < -bound {
								t.Errorf("worker %d req %d: value %d off by %v (> %v)", w, i, j, d, bound)
								break
							}
						}
					}
				}
				if err != nil {
					errsMu.Lock()
					errs = append(errs, err)
					errsMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if len(errs) != 0 {
		t.Fatalf("%d of %d requests failed despite retry+hedge; first: %v",
			len(errs), workers*perWorker, errs[0])
	}

	// The failure detector must have noticed: within a few poll intervals
	// the killed node leaves the routable set.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var downed bool
		for _, v := range cc.Peers() {
			if v.Addr == nodes[1].url && !v.Routable() {
				downed = true
			}
		}
		if downed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed node still routable in peer view: %+v", cc.Peers())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterInfoEndpoint pins the wire shape the membership poller
// depends on: /v1/cluster/info serves node identity and load, and flips
// draining (plus Retry-After, like /readyz) once drain begins.
func TestClusterInfoEndpoint(t *testing.T) {
	n := startNode(t, service.Config{NodeID: "e2e-node", DisableTracing: true})
	m := cluster.New(cluster.Config{Peers: []string{n.url}, PollTimeout: time.Second})
	ctx := context.Background()

	m.PollOnce(ctx)
	views := m.Peers()
	if len(views) != 1 || views[0].NodeID != "e2e-node" || !views[0].Routable() {
		t.Fatalf("peer view = %+v, want routable e2e-node", views)
	}

	n.srv.BeginDrain()
	resp, err := http.Get(n.url + "/v1/cluster/info")
	if err != nil {
		t.Fatalf("GET /v1/cluster/info: %v", err)
	}
	resp.Body.Close()
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining /v1/cluster/info missing Retry-After header")
	}
	rz, err := http.Get(n.url + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz status = %d, want 503", rz.StatusCode)
	}
	if rz.Header.Get("Retry-After") == "" {
		t.Error("draining /readyz missing Retry-After header")
	}

	m.PollOnce(ctx)
	if v := m.Peers()[0]; !v.Alive() || v.Routable() {
		t.Fatalf("draining peer view = %+v, want alive but not routable", v)
	}
}

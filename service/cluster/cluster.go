// Package cluster is the membership layer for a fleet of szxd nodes: a
// static seed list of peers, an HTTP poller against each peer's
// /v1/cluster/info (falling back to /readyz for nodes that predate the
// info endpoint), and a per-peer failure-detection state machine
//
//	alive → suspect → dead → (rejoin) alive
//
// driven by consecutive probe failures and healed by any successful probe.
// The poller also harvests each peer's load signals (queue depth,
// in-flight, drain state), which is what turns per-node admission control
// into fleet-level routing: the client-side ClusterClient embeds a
// Membership over the same node list and routes around draining, suspect,
// and dead peers using the very gauges each node already exports.
//
// Membership is deliberately static-seed rather than gossip: an szxd fleet
// is provisioned by an operator or an orchestrator that knows the node
// list, and a full-mesh poll of N seeds is O(N) probes per node per
// interval — trivial at the fleet sizes one service needs. The state
// machine, not the discovery mechanism, is the part that matters: routing
// must stop sending to a dead node within a couple of poll intervals and
// must start again when it comes back, without operator action.
package cluster

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/telemetry"
)

// State is a peer's failure-detector state.
type State int32

const (
	// StateAlive: the last probe succeeded (or the peer has not been probed
	// yet — peers start alive so a fresh cluster routes immediately).
	StateAlive State = iota
	// StateSuspect: SuspectAfter consecutive probes failed. Routing treats
	// suspects as a last resort, but they are not written off: one good
	// probe heals them.
	StateSuspect
	// StateDead: DeadAfter consecutive probes failed. Routing excludes dead
	// peers entirely; polling continues so a recovered peer rejoins.
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return "unknown"
}

// Info is the wire shape of GET /v1/cluster/info: one node's identity and
// instantaneous load. The service package serves it; this package polls it.
type Info struct {
	NodeID      string `json:"node_id"`
	Version     string `json:"version,omitempty"`
	GoVersion   string `json:"goversion,omitempty"`
	Kernels     string `json:"kernels,omitempty"`
	MaxInFlight int    `json:"max_in_flight"`
	InFlight    int    `json:"in_flight"`
	QueueDepth  int    `json:"queue_depth"`
	Draining    bool   `json:"draining"`
	UptimeSec   int64  `json:"uptime_s"`
}

// Load is the routing signal derived from Info: total commitment relative
// to capacity. A node with 8 in flight and 4 queued is "12 deep" whatever
// its cap; least-loaded routing compares these directly.
func (i Info) Load() int { return i.InFlight + i.QueueDepth }

// Config tunes a Membership. Zero fields get production-shaped defaults.
type Config struct {
	// Self is this node's own advertised address; a peer entry equal to it
	// (after URL normalization) is skipped, so operators can hand every
	// node the identical -peers list. Empty is fine for client-side use.
	Self string
	// Peers is the static seed list: base URLs or host:port strings.
	Peers []string
	// PollInterval is the probe cadence (0 = 1s).
	PollInterval time.Duration
	// PollTimeout bounds one probe (0 = half the interval, capped at 2s).
	PollTimeout time.Duration
	// SuspectAfter is the consecutive-failure count that moves an alive
	// peer to suspect (0 = 2).
	SuspectAfter int
	// DeadAfter is the consecutive-failure count that moves a peer to dead
	// (0 = 4). Must be ≥ SuspectAfter to be meaningful.
	DeadAfter int
	// HTTPClient overrides the probe client (nil = a pooled client with
	// the poll timeout).
	HTTPClient *http.Client
	// Logger, when non-nil, receives one structured line per state
	// transition — the membership audit trail.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.PollInterval <= 0 {
		c.PollInterval = time.Second
	}
	if c.PollTimeout <= 0 {
		c.PollTimeout = c.PollInterval / 2
		if c.PollTimeout > 2*time.Second {
			c.PollTimeout = 2 * time.Second
		}
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 4
	}
	if c.DeadAfter < c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter
	}
	return c
}

// NormalizeAddr turns a peer entry into a base URL: "host:8080" becomes
// "http://host:8080", URLs pass through with trailing slashes trimmed.
func NormalizeAddr(addr string) string {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return ""
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// peer is one tracked node. state and info are atomics so PeerView
// snapshots never block the poll loop; fails is only touched by the poll
// goroutine.
type peer struct {
	addr     string // normalized base URL
	state    atomic.Int32
	fails    atomic.Int32
	info     atomic.Pointer[Info]
	lastSeen atomic.Int64 // unix nanos of the last successful probe
}

// PeerView is a read-only snapshot of one peer for routing and debugging.
type PeerView struct {
	Addr     string    `json:"addr"`
	State    string    `json:"state"`
	NodeID   string    `json:"node_id,omitempty"`
	Draining bool      `json:"draining"`
	Load     int       `json:"load"`
	InFlight int       `json:"in_flight"`
	Queue    int       `json:"queue_depth"`
	LastSeen time.Time `json:"last_seen,omitzero"`
	Fails    int       `json:"consecutive_failures"`

	state State // typed form of State, for routing code
}

// Alive reports whether the peer's failure detector considers it up.
func (v PeerView) Alive() bool { return v.state == StateAlive }

// Routable reports whether the peer should receive new work: alive and not
// draining.
func (v PeerView) Routable() bool { return v.state == StateAlive && !v.Draining }

// Suspect reports the intermediate detector state.
func (v PeerView) Suspect() bool { return v.state == StateSuspect }

// Membership tracks the health and load of a fixed peer set.
type Membership struct {
	cfg   Config
	hc    *http.Client
	peers []*peer

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a Membership over cfg.Peers (minus cfg.Self). It does not
// start polling; call Start, or PollOnce for a synchronous round.
func New(cfg Config) *Membership {
	cfg = cfg.withDefaults()
	self := NormalizeAddr(cfg.Self)
	m := &Membership{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	seen := make(map[string]bool)
	for _, p := range cfg.Peers {
		addr := NormalizeAddr(p)
		if addr == "" || addr == self || seen[addr] {
			continue
		}
		seen[addr] = true
		pr := &peer{addr: addr}
		pr.state.Store(int32(StateAlive))
		m.peers = append(m.peers, pr)
		telemetry.ClusterNodeRequests(addr) // register the node label eagerly
	}
	m.hc = cfg.HTTPClient
	if m.hc == nil {
		m.hc = &http.Client{
			Timeout: cfg.PollTimeout,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 2,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	m.publishStateGauges()
	return m
}

// Start launches the background poll loop. Safe to call once; use Stop to
// end it. A Membership used purely via PollOnce never needs Start.
func (m *Membership) Start() {
	m.startOnce.Do(func() {
		go func() {
			defer close(m.done)
			tick := time.NewTicker(m.cfg.PollInterval)
			defer tick.Stop()
			// First round immediately: routing should have real states one
			// timeout after startup, not one interval.
			m.PollOnce(context.Background())
			for {
				select {
				case <-m.stop:
					return
				case <-tick.C:
					m.PollOnce(context.Background())
				}
			}
		}()
	})
}

// Stop ends the poll loop and waits for it to exit. A Membership that was
// never started stops immediately (and can no longer be started).
func (m *Membership) Stop() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	// If Start never ran, claim the once so done gets closed exactly once.
	m.startOnce.Do(func() { close(m.done) })
	<-m.done
}

// PollOnce probes every peer concurrently and applies the state machine.
// It is the unit the background loop repeats, exposed so tests (and
// callers that want poll-on-demand) can drive membership synchronously.
func (m *Membership) PollOnce(ctx context.Context) {
	if len(m.peers) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(ctx, m.cfg.PollTimeout)
	defer cancel()
	var wg sync.WaitGroup
	results := make([]probeResult, len(m.peers))
	for i, p := range m.peers {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			results[i] = m.probe(ctx, p.addr)
		}(i, p)
	}
	wg.Wait()
	for i, p := range m.peers {
		m.apply(p, results[i])
	}
	m.publishStateGauges()
	telemetry.ClusterPolls.Inc()
}

type probeResult struct {
	ok   bool
	info *Info
}

// probe hits one peer's /v1/cluster/info; a 404 (an older node without the
// endpoint) degrades to /readyz, where 200 means alive and 503 means alive
// but draining — a draining peer is a healthy process that asked not to
// receive work, which is a routing fact, not a failure.
func (m *Membership) probe(ctx context.Context, addr string) probeResult {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/cluster/info", nil)
	if err != nil {
		return probeResult{}
	}
	resp, err := m.hc.Do(req)
	if err != nil {
		return probeResult{}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var info Info
		if json.NewDecoder(resp.Body).Decode(&info) != nil {
			return probeResult{}
		}
		return probeResult{ok: true, info: &info}
	case http.StatusNotFound:
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/readyz", nil)
		if err != nil {
			return probeResult{}
		}
		r2, err := m.hc.Do(req)
		if err != nil {
			return probeResult{}
		}
		defer r2.Body.Close()
		switch r2.StatusCode {
		case http.StatusOK:
			return probeResult{ok: true, info: &Info{}}
		case http.StatusServiceUnavailable:
			return probeResult{ok: true, info: &Info{Draining: true}}
		}
		return probeResult{}
	}
	return probeResult{}
}

// apply runs the failure-detector transition for one probe outcome.
func (m *Membership) apply(p *peer, r probeResult) {
	if r.ok {
		p.fails.Store(0)
		p.info.Store(r.info)
		p.lastSeen.Store(time.Now().UnixNano())
		m.transition(p, StateAlive)
		return
	}
	fails := int(p.fails.Add(1))
	switch {
	case fails >= m.cfg.DeadAfter:
		m.transition(p, StateDead)
	case fails >= m.cfg.SuspectAfter:
		m.transition(p, StateSuspect)
	}
}

// transition moves a peer to next (no-op if already there), counting and
// logging the edge.
func (m *Membership) transition(p *peer, next State) {
	prev := State(p.state.Swap(int32(next)))
	if prev == next {
		return
	}
	switch next {
	case StateAlive:
		telemetry.ClusterPeerToAlive.Inc()
	case StateSuspect:
		telemetry.ClusterPeerToSuspect.Inc()
	case StateDead:
		telemetry.ClusterPeerToDead.Inc()
	}
	if m.cfg.Logger != nil {
		m.cfg.Logger.Info("peer transition",
			"peer", p.addr, "from", prev.String(), "to", next.String(), "fails", p.fails.Load())
	}
}

// publishStateGauges refreshes the szx_cluster_peer_state gauges from the
// current peer set.
func (m *Membership) publishStateGauges() {
	var alive, suspect, dead int64
	for _, p := range m.peers {
		switch State(p.state.Load()) {
		case StateAlive:
			alive++
		case StateSuspect:
			suspect++
		case StateDead:
			dead++
		}
	}
	telemetry.ClusterPeersAlive.Set(alive)
	telemetry.ClusterPeersSuspect.Set(suspect)
	telemetry.ClusterPeersDead.Set(dead)
}

// Peers snapshots every tracked peer.
func (m *Membership) Peers() []PeerView {
	out := make([]PeerView, 0, len(m.peers))
	for _, p := range m.peers {
		out = append(out, p.view())
	}
	return out
}

func (p *peer) view() PeerView {
	st := State(p.state.Load())
	v := PeerView{
		Addr:  p.addr,
		State: st.String(),
		Fails: int(p.fails.Load()),
		state: st,
	}
	if info := p.info.Load(); info != nil {
		v.NodeID = info.NodeID
		v.Draining = info.Draining
		v.Load = info.Load()
		v.InFlight = info.InFlight
		v.Queue = info.QueueDepth
	}
	if ns := p.lastSeen.Load(); ns != 0 {
		v.LastSeen = time.Unix(0, ns)
	}
	return v
}

// Handler serves the membership table as JSON — the /debug/cluster
// endpoint cmd/szxd mounts in cluster mode.
func (m *Membership) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Self  string     `json:"self,omitempty"`
			Peers []PeerView `json:"peers"`
		}{Self: NormalizeAddr(m.cfg.Self), Peers: m.Peers()})
	})
}

package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestNormalizeAddr(t *testing.T) {
	cases := []struct{ in, want string }{
		{"localhost:8080", "http://localhost:8080"},
		{"http://localhost:8080", "http://localhost:8080"},
		{"http://localhost:8080/", "http://localhost:8080"},
		{"https://node-1.example:443///", "https://node-1.example:443"},
		{"  10.0.0.1:9000 ", "http://10.0.0.1:9000"},
		{"", ""},
		{"   ", ""},
	}
	for _, c := range cases {
		if got := NormalizeAddr(c.in); got != c.want {
			t.Errorf("NormalizeAddr(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// fakePeer is a toggleable stand-in for one szxd node: it serves
// /v1/cluster/info while up and refuses (500) while down.
type fakePeer struct {
	srv      *httptest.Server
	down     atomic.Bool
	draining atomic.Bool
	legacy   atomic.Bool // 404 the info endpoint, forcing the readyz fallback
}

func newFakePeer(t *testing.T, nodeID string) *fakePeer {
	t.Helper()
	p := &fakePeer{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/info", func(w http.ResponseWriter, _ *http.Request) {
		if p.down.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		if p.legacy.Load() {
			http.NotFound(w, nil)
			return
		}
		_ = json.NewEncoder(w).Encode(Info{
			NodeID:     nodeID,
			InFlight:   3,
			QueueDepth: 2,
			Draining:   p.draining.Load(),
		})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if p.down.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		if p.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte("ready\n"))
	})
	p.srv = httptest.NewServer(mux)
	t.Cleanup(p.srv.Close)
	return p
}

func pollN(m *Membership, n int) {
	for range n {
		m.PollOnce(context.Background())
	}
}

func onlyPeer(t *testing.T, m *Membership) PeerView {
	t.Helper()
	views := m.Peers()
	if len(views) != 1 {
		t.Fatalf("expected 1 peer, got %d", len(views))
	}
	return views[0]
}

func TestFailureDetectorStateMachine(t *testing.T) {
	p := newFakePeer(t, "n1")
	m := New(Config{
		Peers:        []string{p.srv.URL},
		SuspectAfter: 2,
		DeadAfter:    4,
		PollTimeout:  500 * time.Millisecond,
	})

	// Fresh peers start alive, before any probe.
	if v := onlyPeer(t, m); !v.Alive() {
		t.Fatalf("fresh peer state = %s, want alive", v.State)
	}

	pollN(m, 1)
	v := onlyPeer(t, m)
	if !v.Alive() || v.NodeID != "n1" || v.Load != 5 {
		t.Fatalf("after good probe: state=%s nodeID=%q load=%d, want alive/n1/5", v.State, v.NodeID, v.Load)
	}

	// One failure: still alive (below SuspectAfter).
	p.down.Store(true)
	pollN(m, 1)
	if v := onlyPeer(t, m); !v.Alive() || v.Fails != 1 {
		t.Fatalf("after 1 failure: state=%s fails=%d, want alive/1", v.State, v.Fails)
	}

	// Second failure: suspect.
	pollN(m, 1)
	if v := onlyPeer(t, m); !v.Suspect() {
		t.Fatalf("after 2 failures: state=%s, want suspect", v.State)
	}

	// Fourth failure: dead.
	pollN(m, 2)
	if v := onlyPeer(t, m); v.State != "dead" {
		t.Fatalf("after 4 failures: state=%s, want dead", v.State)
	}

	// One good probe rejoins from dead.
	p.down.Store(false)
	pollN(m, 1)
	if v := onlyPeer(t, m); !v.Alive() || v.Fails != 0 {
		t.Fatalf("after recovery: state=%s fails=%d, want alive/0", v.State, v.Fails)
	}
}

func TestDrainingPeerIsAliveButNotRoutable(t *testing.T) {
	p := newFakePeer(t, "n1")
	p.draining.Store(true)
	m := New(Config{Peers: []string{p.srv.URL}, PollTimeout: 500 * time.Millisecond})
	pollN(m, 1)
	v := onlyPeer(t, m)
	if !v.Alive() {
		t.Fatalf("draining peer state = %s, want alive", v.State)
	}
	if v.Routable() {
		t.Fatal("draining peer reported routable")
	}
}

func TestReadyzFallback(t *testing.T) {
	p := newFakePeer(t, "n1")
	p.legacy.Store(true) // info endpoint 404s; poller must degrade to /readyz
	m := New(Config{Peers: []string{p.srv.URL}, PollTimeout: 500 * time.Millisecond})

	pollN(m, 1)
	if v := onlyPeer(t, m); !v.Alive() || v.Draining {
		t.Fatalf("legacy ready peer: state=%s draining=%v, want alive/false", v.State, v.Draining)
	}

	p.draining.Store(true)
	pollN(m, 1)
	v := onlyPeer(t, m)
	if !v.Alive() || !v.Draining {
		t.Fatalf("legacy draining peer: state=%s draining=%v, want alive/true", v.State, v.Draining)
	}
}

func TestSelfAndDuplicatesSkipped(t *testing.T) {
	m := New(Config{
		Self: "localhost:9001",
		Peers: []string{
			"localhost:9001",         // self, host:port form
			"http://localhost:9001/", // self again, URL form
			"localhost:9002",
			"http://localhost:9002",  // duplicate of the above
			"localhost:9003",
		},
	})
	views := m.Peers()
	if len(views) != 2 {
		t.Fatalf("expected self and duplicates skipped (2 peers), got %d: %+v", len(views), views)
	}
}

func TestStartStopAndStopWithoutStart(t *testing.T) {
	p := newFakePeer(t, "n1")
	m := New(Config{Peers: []string{p.srv.URL}, PollInterval: 10 * time.Millisecond})
	m.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v := onlyPeer(t, m); v.NodeID == "n1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background poll never populated peer info")
		}
		time.Sleep(5 * time.Millisecond)
	}
	m.Stop()
	m.Stop() // idempotent

	// Stop on a never-started Membership returns immediately.
	m2 := New(Config{Peers: []string{p.srv.URL}})
	done := make(chan struct{})
	go func() { m2.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop without Start hung")
	}
}

func TestDebugHandler(t *testing.T) {
	p := newFakePeer(t, "n1")
	m := New(Config{Self: "localhost:7777", Peers: []string{p.srv.URL}, PollTimeout: 500 * time.Millisecond})
	pollN(m, 1)

	rr := httptest.NewRecorder()
	m.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/cluster", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("debug handler status = %d", rr.Code)
	}
	var got struct {
		Self  string     `json:"self"`
		Peers []PeerView `json:"peers"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("debug handler body not JSON: %v\n%s", err, rr.Body.String())
	}
	if got.Self != "http://localhost:7777" {
		t.Errorf("self = %q, want normalized http://localhost:7777", got.Self)
	}
	if len(got.Peers) != 1 || got.Peers[0].NodeID != "n1" || got.Peers[0].State != "alive" {
		t.Errorf("peers = %+v, want one alive n1", got.Peers)
	}
	if !strings.Contains(rr.Body.String(), "consecutive_failures") {
		t.Errorf("debug JSON missing failure-count field:\n%s", rr.Body.String())
	}
}

// Package service exposes the SZx codec behind an HTTP service boundary —
// the in-flight use cases the paper motivates (checkpoint dump/load, data
// migration, instrument streams) almost always reach a compressor over a
// network hop, not a function call.
//
// The server is deliberately boring on the wire and careful behind it:
//
//   - POST /v1/compress — raw little-endian float payload in, SZx stream
//     out. Options ride in the query string (?t=f32&e=1e-3&mode=rel&...).
//   - POST /v1/decompress — SZx stream (or SZXS streaming container,
//     auto-detected) in, raw little-endian floats out.
//   - POST /v1/stream/compress — unbounded raw float32 body in, SZXS
//     container out, pumped through the pipelined engine with bounded
//     memory; neither side is ever buffered whole.
//   - POST /v1/stream/decompress — SZXS container in, raw float32 out,
//     same bounded-memory pipeline in reverse.
//   - POST /v1/batch/compress, /v1/batch/decompress — many small arrays in
//     one SZXB-framed request, processed in one engine pass under one
//     admission slot with per-array error reporting (see batch.go).
//   - GET /healthz, /readyz — liveness and drain-aware readiness.
//   - GET /metrics, /debug/vars — the telemetry package's existing export
//     surfaces, including the szx_service_* family.
//
// Every data endpoint passes admission control first: a semaphore caps
// concurrent work at MaxInFlight, a bounded queue absorbs bursts, and
// anything beyond that is shed immediately with 429 + Retry-After rather
// than queueing without bound (503 while draining). Admitted requests run
// on pooled Codec handles and scratch buffers, so the steady-state
// compression path allocates nothing; request contexts are threaded into
// the pipelined engine so an abandoned request unwinds instead of
// stranding goroutines.
package service

import (
	"context"
	"expvar"
	"log/slog"
	"net/http"
	"runtime"
	"time"

	szx "repro"
	"repro/telemetry"
	"repro/telemetry/trace"
)

// Config tunes a Server. The zero value is serviceable: every field has a
// production-shaped default applied by New.
type Config struct {
	// MaxInFlight caps concurrently executing requests (0 = 2×GOMAXPROCS).
	// This is the knob that keeps a compression service CPU-bound instead
	// of thrash-bound: admitted work never exceeds what the cores can run.
	MaxInFlight int
	// MaxQueue caps requests waiting for an execution slot
	// (0 = 4×MaxInFlight, negative = no queue: shed immediately when busy).
	MaxQueue int
	// QueueWait caps how long a queued request waits before being shed
	// with 429 (0 = 2s).
	QueueWait time.Duration
	// MaxBodyBytes caps buffered request bodies on the non-streaming
	// endpoints (0 = 1 GiB). Streaming endpoints are unbounded by design —
	// their memory use is the pipeline window, not the body size.
	MaxBodyBytes int64
	// DefaultErrorBound applies when a request omits ?e= (0 = 1e-3).
	DefaultErrorBound float64
	// MaxWorkers caps per-request codec parallelism requested via
	// ?workers= (0 = GOMAXPROCS). A single request is never allowed to
	// grab more cores than this, whatever it asks for.
	MaxWorkers int
	// ChunkValues is the SZXS chunk granularity on the streaming endpoints
	// (0 = szx.DefaultChunkValues).
	ChunkValues int
	// MaxBatchArrays caps the array count in one /v1/batch request
	// (0 = 1024). The body-size cap still applies on top; this bounds the
	// positional bookkeeping, not the bytes.
	MaxBatchArrays int
	// StreamParallelism is the pipeline worker count per streaming request
	// (0 = 1). Per-request pipelines stay narrow on purpose: cross-request
	// concurrency comes from MaxInFlight, and a wide pipeline per request
	// would let one stream monopolize the pool.
	StreamParallelism int
	// DisableTracing turns off request-scoped tracing (the zero value keeps
	// it on: per-request span overhead is a handful of clock reads). With
	// tracing on, every request gets a trace honoring an incoming
	// traceparent header, the trace ID comes back in Szx-Trace-Id, and the
	// interesting traces are browsable at GET /debug/requests.
	DisableTracing bool
	// TraceRing is how many finished traces /debug/requests retains
	// (0 = 256).
	TraceRing int
	// TraceSample keeps 1 in TraceSample unremarkable traces (0 = 16;
	// 1 keeps everything; negative keeps only errors and slow requests).
	// Errors and p99-slow requests are always kept regardless.
	TraceSample int
	// AccessLog, when non-nil, receives one structured line per data-plane
	// request (trace ID, endpoint, status, bytes, duration, queue wait,
	// per-stage breakdown). Nil disables access logging.
	AccessLog *slog.Logger
	// NodeID is this instance's identity in GET /v1/cluster/info (empty = a
	// random "szx-xxxxxxxxxxxx" minted at construction). Operators running a
	// cluster set it so peer views stay stable across restarts.
	NodeID string
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
	if c.DefaultErrorBound <= 0 {
		c.DefaultErrorBound = 1e-3
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.ChunkValues <= 0 {
		c.ChunkValues = szx.DefaultChunkValues
	}
	if c.MaxBatchArrays <= 0 {
		c.MaxBatchArrays = 1024
	}
	if c.StreamParallelism <= 0 {
		c.StreamParallelism = 1
	}
	return c
}

// Server is the compression service. Construct with New, mount Handler on
// an http.Server (cmd/szxd does exactly this), and call Drain before
// shutting down.
type Server struct {
	cfg    Config
	adm    *admission
	mux    *http.ServeMux
	rec    *trace.Recorder // nil when tracing is disabled
	alog   *slog.Logger    // nil when access logging is disabled
	nodeID string
	start  time.Time
}

// New returns a Server with cfg's zero fields defaulted.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		adm:    newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait),
		alog:   cfg.AccessLog,
		nodeID: cfg.NodeID,
		start:  time.Now(),
	}
	if s.nodeID == "" {
		s.nodeID = newNodeID()
	}
	if !cfg.DisableTracing {
		s.rec = trace.NewRecorder(cfg.TraceRing, cfg.TraceSample)
	}
	telemetry.PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compress", s.handleCompress)
	mux.HandleFunc("POST /v1/decompress", s.handleDecompress)
	mux.HandleFunc("POST /v1/stream/compress", s.handleStreamCompress)
	mux.HandleFunc("POST /v1/stream/decompress", s.handleStreamDecompress)
	mux.HandleFunc("POST /v1/batch/compress", s.handleBatchCompress)
	mux.HandleFunc("POST /v1/batch/decompress", s.handleBatchDecompress)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/cluster/info", s.handleClusterInfo)
	mux.Handle("GET /metrics", telemetry.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	if s.rec != nil {
		mux.Handle("GET /debug/requests", s.rec.Handler())
	}
	s.mux = mux
	return s
}

// TraceRecorder returns the server's trace ring, or nil when tracing is
// disabled. Exposed for embedding /debug/requests elsewhere and for tests.
func (s *Server) TraceRecorder() *trace.Recorder { return s.rec }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// BeginDrain flips the server into draining mode: /readyz starts returning
// 503 (so load balancers stop routing here), new requests are refused with
// 503, queued requests are released with 503, and in-flight requests run
// to completion. It does not wait; see Drain.
func (s *Server) BeginDrain() { s.adm.beginDrain() }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.adm.draining() }

// InFlight returns the number of requests currently holding an execution
// slot.
func (s *Server) InFlight() int { return s.adm.inFlight() }

// Drain begins draining (if not already) and blocks until every in-flight
// request has completed or ctx expires. Pair it with http.Server.Shutdown:
// BeginDrain first so the readiness probe flips, give the balancer a beat,
// then Drain + Shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.adm.inFlight() == 0 && s.adm.queueDepth() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// handleHealthz reports process liveness: 200 as long as the handler runs,
// draining or not.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// handleReadyz reports routability: 503 once draining begins so load
// balancers pull this instance before shutdown.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.adm.draining() {
		// Retry-After on the probe itself, not just the data-plane 503s:
		// pollers and routers that only watch readiness learn how long to
		// stop sending without ever parsing a JSON error body.
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.QueueWait))
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	_, _ = w.Write([]byte("ready\n"))
}

package service

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// loadStreamReaderCorpus parses the FuzzStreamReader seed corpus (Go fuzz
// v1 text files: a version line, then one []byte("...") literal per
// argument) so the service fuzzer starts from inputs already known to
// exercise the container parser's edges.
func loadStreamReaderCorpus(t testing.TB) [][]byte {
	t.Helper()
	dir := filepath.Join("..", "testdata", "fuzz", "FuzzStreamReader")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read corpus dir: %v", err)
	}
	var seeds [][]byte
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read seed %s: %v", e.Name(), err)
		}
		lines := strings.Split(string(raw), "\n")
		if len(lines) < 2 || !strings.HasPrefix(lines[0], "go test fuzz v1") {
			t.Fatalf("seed %s: unrecognized corpus format", e.Name())
		}
		for _, line := range lines[1:] {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "[]byte(") || !strings.HasSuffix(line, ")") {
				continue
			}
			quoted := line[len("[]byte(") : len(line)-1]
			s, err := strconv.Unquote(quoted)
			if err != nil {
				t.Fatalf("seed %s: unquote: %v", e.Name(), err)
			}
			seeds = append(seeds, []byte(s))
		}
	}
	if len(seeds) == 0 {
		t.Fatal("no seeds parsed from corpus")
	}
	return seeds
}

// postDecompress drives the decompress handler directly (no network) and
// returns the response.
func postDecompress(srv *Server, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", "/v1/decompress", bytes.NewReader(body))
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	return rr
}

// FuzzServiceDecompressHandler throws arbitrary bytes — seeded with the
// stream-reader corpus — at /v1/decompress. Whatever the input, the
// service must answer 200 or a clean 4xx: no panics, no 5xx, no hung
// handler. This is the service-boundary restatement of the codec's own
// "decoding untrusted bytes never crashes" guarantee.
func FuzzServiceDecompressHandler(f *testing.F) {
	for _, seed := range loadStreamReaderCorpus(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	srv := New(Config{MaxBodyBytes: 1 << 22})
	f.Fuzz(func(t *testing.T, blob []byte) {
		rr := postDecompress(srv, blob)
		if rr.Code >= 500 {
			t.Fatalf("5xx (%d) for fuzzed input: %s", rr.Code, rr.Body.String())
		}
		if rr.Code != 200 && rr.Code != 400 && rr.Code != 413 {
			t.Fatalf("unexpected status %d: %s", rr.Code, rr.Body.String())
		}
	})
}

// TestServiceDecompressCorpusNoLeak runs every corpus seed through the
// handler deterministically and then checks the goroutine count returned
// to baseline — the leak-freedom half of the fuzz target's contract,
// which the fuzzer itself can't assert reliably.
func TestServiceDecompressCorpusNoLeak(t *testing.T) {
	seeds := loadStreamReaderCorpus(t)
	srv := New(Config{MaxBodyBytes: 1 << 22})
	runtime.GC()
	baseline := runtime.NumGoroutine()
	for i, seed := range seeds {
		rr := postDecompress(srv, seed)
		if rr.Code >= 500 {
			t.Fatalf("seed %d: 5xx (%d): %s", i, rr.Code, rr.Body.String())
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after corpus replay: %d > %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClassifyStatuses pins the error-to-wire mapping.
func TestClassifyStatuses(t *testing.T) {
	srv := New(Config{})
	for _, tc := range []struct {
		body   []byte
		status int
		code   string
	}{
		{[]byte("garbage that is not a stream"), 400, codeCorrupt},
		{[]byte("SZXS\x01\xff\xff\xff\xff"), 400, codeCorrupt},
		{nil, 400, codeBadRequest},
	} {
		rr := postDecompress(srv, tc.body)
		if rr.Code != tc.status {
			t.Errorf("body %q: status %d, want %d", tc.body, rr.Code, tc.status)
		}
		if !strings.Contains(rr.Body.String(), fmt.Sprintf("%q", tc.code)) {
			t.Errorf("body %q: response %s missing code %q", tc.body, rr.Body.String(), tc.code)
		}
	}
}

package service

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
)

// batchTestField synthesizes a smooth field (the in-package twin of the
// external tests' helper).
func batchTestField(n int, seed int64) []float32 {
	out := make([]float32, n)
	for i := range out {
		x := float64(i) * 0.01
		out[i] = float32(math.Sin(x+float64(seed)) + 0.2*math.Cos(3*x))
	}
	return out
}

func batchF32Bytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

// buildBatch frames payloads as an SZXB request body.
func buildBatch(payloads [][]byte) []byte {
	out := appendBatchHeader(nil, len(payloads))
	for _, p := range payloads {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p)))
		out = append(out, p...)
	}
	return out
}

func postBatch(srv *Server, path, query string, body []byte) *httptest.ResponseRecorder {
	u := path
	if query != "" {
		u += "?" + query
	}
	req := httptest.NewRequest("POST", u, bytes.NewReader(body))
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	return rr
}

// batchEntry is one parsed response frame.
type batchEntry struct {
	status  byte
	payload []byte
}

// parseBatchResp splits an SZXB response body, failing the test on any
// framing defect.
func parseBatchResp(t *testing.T, body []byte) []batchEntry {
	t.Helper()
	if len(body) < batchHeaderLen {
		t.Fatalf("response too short: %d bytes", len(body))
	}
	if string(body[:4]) != batchMagic || body[4] != batchVersion {
		t.Fatalf("bad response envelope: % x", body[:5])
	}
	count := int(binary.LittleEndian.Uint32(body[5:9]))
	entries := make([]batchEntry, 0, count)
	off := batchHeaderLen
	for i := 0; i < count; i++ {
		if len(body)-off < 5 {
			t.Fatalf("response truncated at entry %d", i)
		}
		st := body[off]
		n := int(binary.LittleEndian.Uint32(body[off+1 : off+5]))
		off += 5
		if len(body)-off < n {
			t.Fatalf("response truncated in entry %d", i)
		}
		entries = append(entries, batchEntry{status: st, payload: body[off : off+n]})
		off += n
	}
	if off != len(body) {
		t.Fatalf("%d trailing response bytes", len(body)-off)
	}
	return entries
}

// decodeBatchErr unmarshals a status-1 payload.
func decodeBatchErr(t *testing.T, payload []byte) batchError {
	t.Helper()
	var be batchError
	if err := json.Unmarshal(payload, &be); err != nil {
		t.Fatalf("error payload is not JSON: %v (%q)", err, payload)
	}
	return be
}

// TestBatchCompressByteIdentity pins the headline contract at the HTTP
// layer: every stream a batch produces is byte-identical to the one-shot
// endpoint's output for the same array and options — batching changes
// costs, never bytes.
func TestBatchCompressByteIdentity(t *testing.T) {
	srv := New(Config{})
	arrays := [][]float32{
		batchTestField(4096, 1),
		batchTestField(999, 2), // sub-block tail
		{},                     // empty array is valid
		batchTestField(64, 3),
	}
	payloads := make([][]byte, len(arrays))
	for i, a := range arrays {
		payloads[i] = batchF32Bytes(a)
	}
	const query = "e=0.001"
	rr := postBatch(srv, "/v1/batch/compress", query, buildBatch(payloads))
	if rr.Code != 200 {
		t.Fatalf("batch status %d: %s", rr.Code, rr.Body.String())
	}
	entries := parseBatchResp(t, rr.Body.Bytes())
	if len(entries) != len(arrays) {
		t.Fatalf("%d entries, want %d", len(entries), len(arrays))
	}
	for i, e := range entries {
		if e.status != 0 {
			t.Fatalf("array %d failed: %s", i, e.payload)
		}
		if len(arrays[i]) == 0 {
			// One-shot rejects empty bodies, so an empty array is only
			// reachable batched; its stream just has to decode to nothing.
			dec := postBatch(srv, "/v1/decompress", "", e.payload)
			if dec.Code != 200 || dec.Body.Len() != 0 {
				t.Fatalf("empty array: decode status %d, %d bytes", dec.Code, dec.Body.Len())
			}
			continue
		}
		one := postBatch(srv, "/v1/compress", query, payloads[i])
		if one.Code != 200 {
			t.Fatalf("one-shot %d status %d: %s", i, one.Code, one.Body.String())
		}
		if !bytes.Equal(e.payload, one.Body.Bytes()) {
			t.Fatalf("array %d: batched stream (%d bytes) differs from one-shot (%d bytes)",
				i, len(e.payload), one.Body.Len())
		}
	}
}

// TestBatchRoundTrip pushes a batch through compress then decompress and
// checks the error bound end to end, single-array batch included.
func TestBatchRoundTrip(t *testing.T) {
	srv := New(Config{})
	for _, arrays := range [][][]float32{
		{batchTestField(2048, 5)}, // single array
		{batchTestField(2048, 5), batchTestField(300, 6), batchTestField(4096, 7)},
	} {
		payloads := make([][]byte, len(arrays))
		for i, a := range arrays {
			payloads[i] = batchF32Bytes(a)
		}
		rr := postBatch(srv, "/v1/batch/compress", "e=0.001", buildBatch(payloads))
		if rr.Code != 200 {
			t.Fatalf("compress status %d: %s", rr.Code, rr.Body.String())
		}
		comp := parseBatchResp(t, rr.Body.Bytes())
		comps := make([][]byte, len(comp))
		for i, e := range comp {
			if e.status != 0 {
				t.Fatalf("array %d failed: %s", i, e.payload)
			}
			comps[i] = e.payload
		}
		rr = postBatch(srv, "/v1/batch/decompress", "", buildBatch(comps))
		if rr.Code != 200 {
			t.Fatalf("decompress status %d: %s", rr.Code, rr.Body.String())
		}
		dec := parseBatchResp(t, rr.Body.Bytes())
		for i, e := range dec {
			if e.status != 0 {
				t.Fatalf("decompress array %d failed: %s", i, e.payload)
			}
			if len(e.payload) != 4*len(arrays[i]) {
				t.Fatalf("array %d: %d bytes back, want %d", i, len(e.payload), 4*len(arrays[i]))
			}
			for j, want := range arrays[i] {
				got := math.Float32frombits(binary.LittleEndian.Uint32(e.payload[4*j:]))
				if math.Abs(float64(got)-float64(want)) > 1e-3*1.0001 {
					t.Fatalf("array %d value %d out of bound: %v vs %v", i, j, got, want)
				}
			}
		}
	}
}

// TestBatchEnvelopeRejects pins the whole-request failures: empty batches,
// bad magic/version, truncated framing, and counts over the limit are 400s.
func TestBatchEnvelopeRejects(t *testing.T) {
	srv := New(Config{MaxBatchArrays: 4})
	for name, body := range map[string][]byte{
		"empty batch":   appendBatchHeader(nil, 0),
		"bad magic":     append([]byte("NOPE\x01"), 1, 0, 0, 0),
		"bad version":   append([]byte("SZXB\x09"), 1, 0, 0, 0),
		"short header":  []byte("SZXB"),
		"over limit":    buildBatch([][]byte{{1}, {2}, {3}, {4}, {5}}),
		"truncated len": append(appendBatchHeader(nil, 1), 0xff),
		"truncated arr": append(appendBatchHeader(nil, 1), 0xff, 0xff, 0xff, 0x7f),
		"trailing":      append(buildBatch([][]byte{{1, 2, 3, 4}}), 0xEE),
	} {
		for _, path := range []string{"/v1/batch/compress", "/v1/batch/decompress"} {
			rr := postBatch(srv, path, "e=0.001", body)
			if rr.Code != 400 {
				t.Errorf("%s on %s: status %d, want 400 (%s)", name, path, rr.Code, rr.Body.String())
			}
		}
	}
}

// TestBatchPerArrayErrors is the isolation contract: a bad array yields a
// status-1 entry carrying its own index, and its neighbours still succeed —
// the batch as a whole stays 200.
func TestBatchPerArrayErrors(t *testing.T) {
	srv := New(Config{})
	good := batchTestField(2048, 9)
	goodComp := postBatch(srv, "/v1/compress", "e=0.001", batchF32Bytes(good))
	if goodComp.Code != 200 {
		t.Fatal("one-shot compress failed")
	}
	f64Comp := postBatch(srv, "/v1/compress", "t=f64&e=0.001", make([]byte, 8*512))
	if f64Comp.Code != 200 {
		t.Fatal("one-shot f64 compress failed")
	}

	t.Run("decompress", func(t *testing.T) {
		// Array 1 is corrupt, array 2 is an f64 stream in an f32 batch;
		// arrays 0 and 3 must come back intact.
		comps := [][]byte{
			goodComp.Body.Bytes(),
			[]byte("not a stream at all"),
			f64Comp.Body.Bytes(),
			goodComp.Body.Bytes(),
		}
		rr := postBatch(srv, "/v1/batch/decompress", "", buildBatch(comps))
		if rr.Code != 200 {
			t.Fatalf("batch status %d, want 200: %s", rr.Code, rr.Body.String())
		}
		entries := parseBatchResp(t, rr.Body.Bytes())
		if entries[0].status != 0 || entries[3].status != 0 {
			t.Fatalf("good arrays failed: %d %d", entries[0].status, entries[3].status)
		}
		be := decodeBatchErr(t, entries[1].payload)
		if be.Code != codeCorrupt || be.Index != 1 {
			t.Fatalf("array 1: got %+v, want corrupt at index 1", be)
		}
		be = decodeBatchErr(t, entries[2].payload)
		if be.Code != codeWrongType || be.Index != 2 {
			t.Fatalf("array 2: got %+v, want wrong_type at index 2", be)
		}
		if !bytes.Equal(entries[0].payload, entries[3].payload) {
			t.Fatal("identical good arrays decoded differently")
		}
	})

	t.Run("compress", func(t *testing.T) {
		// Array 0 is misaligned (7 bytes of float32 data); array 1 is fine.
		rr := postBatch(srv, "/v1/batch/compress", "e=0.001",
			buildBatch([][]byte{make([]byte, 7), batchF32Bytes(good)}))
		if rr.Code != 200 {
			t.Fatalf("batch status %d, want 200: %s", rr.Code, rr.Body.String())
		}
		entries := parseBatchResp(t, rr.Body.Bytes())
		be := decodeBatchErr(t, entries[0].payload)
		if be.Code != codeBadRequest || be.Index != 0 {
			t.Fatalf("array 0: got %+v, want bad_request at index 0", be)
		}
		if entries[1].status != 0 || !bytes.Equal(entries[1].payload, goodComp.Body.Bytes()) {
			t.Fatal("good array after a misaligned one did not compress identically")
		}
	})
}

// TestBatchOneAdmissionSlot: a whole batch occupies ONE admission slot. A
// server with MaxInFlight=1 and no queue would shed 63 of 64 concurrent
// one-shot requests; the same arrays as one batch must fully succeed.
func TestBatchOneAdmissionSlot(t *testing.T) {
	srv := New(Config{MaxInFlight: 1, MaxQueue: -1})
	payloads := make([][]byte, 64)
	for i := range payloads {
		payloads[i] = batchF32Bytes(batchTestField(1024, int64(i)))
	}
	rr := postBatch(srv, "/v1/batch/compress", "e=0.001", buildBatch(payloads))
	if rr.Code != 200 {
		t.Fatalf("status %d, want 200: %s", rr.Code, rr.Body.String())
	}
	for i, e := range parseBatchResp(t, rr.Body.Bytes()) {
		if e.status != 0 {
			t.Fatalf("array %d failed under MaxInFlight=1: %s", i, e.payload)
		}
	}
}

// FuzzBatchWire throws arbitrary bytes at both batch endpoints. The
// contract: no panics, never a 5xx, and every 200 carries a well-formed
// SZXB response whose error entries are positionally labeled.
func FuzzBatchWire(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SZXB"))
	f.Add(appendBatchHeader(nil, 0))
	f.Add(buildBatch([][]byte{batchF32Bytes(batchTestField(256, 1))}))
	f.Add(buildBatch([][]byte{make([]byte, 7), batchF32Bytes(batchTestField(16, 2)), {}}))
	f.Add(buildBatch([][]byte{[]byte("not a stream"), []byte("SZX\x00garbage")}))
	f.Add(append(appendBatchHeader(nil, 2), 0xff, 0xff, 0xff, 0xff))
	f.Add(append(buildBatch([][]byte{{1, 2, 3, 4}}), 0x00))
	srv := New(Config{MaxBodyBytes: 1 << 22, MaxBatchArrays: 128})
	f.Fuzz(func(t *testing.T, blob []byte) {
		for _, path := range []string{"/v1/batch/compress", "/v1/batch/decompress"} {
			rr := postBatch(srv, path, "e=0.001", blob)
			if rr.Code >= 500 {
				t.Fatalf("%s: 5xx (%d) for fuzzed input: %s", path, rr.Code, rr.Body.String())
			}
			if rr.Code != 200 {
				continue
			}
			body := rr.Body.Bytes()
			if len(body) < batchHeaderLen || string(body[:4]) != batchMagic {
				t.Fatalf("%s: 200 with malformed response envelope", path)
			}
			count := int(binary.LittleEndian.Uint32(body[5:9]))
			off := batchHeaderLen
			for i := 0; i < count; i++ {
				if len(body)-off < 5 {
					t.Fatalf("%s: 200 response truncated at entry %d", path, i)
				}
				st := body[off]
				n := int(binary.LittleEndian.Uint32(body[off+1 : off+5]))
				off += 5
				if st > 1 || len(body)-off < n {
					t.Fatalf("%s: bad entry %d (status %d, len %d)", path, i, st, n)
				}
				if st == 1 {
					var be batchError
					if err := json.Unmarshal(body[off:off+n], &be); err != nil {
						t.Fatalf("%s: entry %d error payload not JSON: %v", path, i, err)
					}
					if be.Index != i {
						t.Fatalf("%s: entry %d error labeled index %d", path, i, be.Index)
					}
				}
				off += n
			}
			if off != len(body) {
				t.Fatalf("%s: %d trailing bytes in 200 response", path, len(body)-off)
			}
		}
	})
}

package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/service"
	"repro/service/client"
	"repro/telemetry"
	"repro/telemetry/trace"
)

// syncBuf is a goroutine-safe bytes.Buffer for capturing slog output
// written from handler goroutines.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// tracePage mirrors the /debug/requests JSON shape.
type tracePage struct {
	Offered int64        `json:"offered"`
	Kept    int64        `json:"kept"`
	Traces  []trace.View `json:"traces"`
}

func fetchTrace(t *testing.T, baseURL, id string) (trace.View, bool) {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/requests?trace_id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return trace.View{}, false
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests: status %d", resp.StatusCode)
	}
	var page tracePage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if len(page.Traces) != 1 {
		t.Fatalf("trace_id lookup returned %d traces", len(page.Traces))
	}
	return page.Traces[0], true
}

// TestServiceTraceEndToEnd is the tracing acceptance test: a request sent
// through the client with a caller-supplied trace ID must yield a
// /debug/requests entry under that same ID whose non-overlapping spans
// (queue wait, body read, unpack, plan, encode, response write) account
// for at least 90% of the server-measured request latency, and the same
// trace ID must appear in the structured access-log line.
func TestServiceTraceEndToEnd(t *testing.T) {
	telemetry.Reset()
	var logBuf syncBuf
	_, c, baseURL := newTestServer(t, service.Config{
		TraceSample: 1, // keep every trace: no sampling flakiness
		AccessLog:   slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})

	// ~8 MiB payload so codec work dominates and per-span jitter is noise.
	vals := testField(2<<20, 3)
	tr := trace.New("caller-op")
	ctx := trace.NewContext(context.Background(), tr)
	comp, err := c.Compress(ctx, vals, client.Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) == 0 {
		t.Fatal("empty compressed payload")
	}

	// The caller-side trace saw the round trip as one client span.
	if tr.SpanDur("client:compress") <= 0 {
		t.Fatal("client did not record its round-trip span on the caller trace")
	}

	// The handler finishes the trace in a deferred end() that can lag the
	// client's return by a scheduling beat; the access-log line is written
	// after the trace is offered to the ring, so poll for it.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(logBuf.String(), tr.ID()) {
		if time.Now().After(deadline) {
			t.Fatalf("trace ID %s never appeared in the access log:\n%s", tr.ID(), logBuf.String())
		}
		time.Sleep(time.Millisecond)
	}
	logLine := logBuf.String()
	for _, want := range []string{`"trace_id":"` + tr.ID() + `"`, `"endpoint":"compress"`, `"status":200`, `"stages":`} {
		if !strings.Contains(logLine, want) {
			t.Errorf("access log missing %s:\n%s", want, logLine)
		}
	}

	v, ok := fetchTrace(t, baseURL, tr.ID())
	if !ok {
		t.Fatalf("trace %s not retained at TraceSample=1", tr.ID())
	}
	if v.TraceID != tr.ID() {
		t.Fatalf("retained trace ID = %s, want %s", v.TraceID, tr.ID())
	}
	if v.Name != "compress" || v.Status != 200 {
		t.Fatalf("trace view endpoint/status = %s/%d", v.Name, v.Status)
	}
	if v.BytesIn != int64(4*len(vals)) {
		t.Fatalf("bytes_in = %d, want %d", v.BytesIn, 4*len(vals))
	}
	if v.BytesOut != int64(len(comp)) {
		t.Fatalf("bytes_out = %d, want %d", v.BytesOut, len(comp))
	}
	// The server adopted the client's trace ID via traceparent, so the
	// parent span ID must be recorded too.
	if len(v.ParentSpan) != 16 {
		t.Fatalf("parent span ID = %q, want 16 hex digits", v.ParentSpan)
	}

	// Latency attribution: the sequential span set must cover the request.
	sequential := map[string]bool{
		"queue_wait": true, "read_body": true, "unpack_body": true,
		"resolve_plan": true, "encode": true, "encode_phase": true,
		"gather_phase": true, "write_response": true,
	}
	var sum int64
	seen := map[string]bool{}
	for _, s := range v.Spans {
		if sequential[s.Name] {
			sum += int64(s.Dur)
		}
		seen[s.Name] = true
	}
	for _, must := range []string{"queue_wait", "read_body", "resolve_plan", "write_response"} {
		if !seen[must] {
			t.Errorf("span %q missing (have %v)", must, v.Spans)
		}
	}
	if !seen["encode"] && !seen["encode_phase"] {
		t.Errorf("no codec encode span recorded (have %v)", v.Spans)
	}
	if v.DurNs <= 0 {
		t.Fatalf("trace duration %d", v.DurNs)
	}
	if cover := float64(sum) / float64(v.DurNs); cover < 0.90 || cover > 1.001 {
		t.Fatalf("spans cover %.1f%% of the request (%s of %s); want within 10%%",
			100*cover, time.Duration(sum), time.Duration(v.DurNs))
	}
}

// TestServiceTraceparentAdoption pins the wire format: a well-formed
// incoming traceparent is adopted (same trace ID back in Szx-Trace-Id), a
// malformed one gets a fresh ID rather than an error.
func TestServiceTraceparentAdoption(t *testing.T) {
	telemetry.Reset()
	_, _, baseURL := newTestServer(t, service.Config{})

	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest(http.MethodPost, baseURL+"/v1/compress",
		bytes.NewReader(f32Bytes(testField(64, 1))))
	req.Header.Set("Traceparent", "00-"+tid+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("Szx-Trace-Id"); got != tid {
		t.Fatalf("Szx-Trace-Id = %q, want adopted %q", got, tid)
	}

	req, _ = http.NewRequest(http.MethodPost, baseURL+"/v1/compress",
		bytes.NewReader(f32Bytes(testField(64, 1))))
	req.Header.Set("Traceparent", "garbage")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got := resp.Header.Get("Szx-Trace-Id")
	if len(got) != 32 || got == tid {
		t.Fatalf("malformed traceparent: Szx-Trace-Id = %q, want fresh 32-hex ID", got)
	}
}

// TestServiceTracingDisabled checks the off switch: no trace header, no
// /debug/requests endpoint.
func TestServiceTracingDisabled(t *testing.T) {
	telemetry.Reset()
	srv, c, baseURL := newTestServer(t, service.Config{DisableTracing: true})
	if srv.TraceRecorder() != nil {
		t.Fatal("recorder must be nil with tracing disabled")
	}
	if _, err := c.Compress(context.Background(), testField(256, 2), client.Params{}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/compress?e=1e-3", "application/octet-stream",
		bytes.NewReader(f32Bytes(testField(64, 1))))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if h := resp.Header.Get("Szx-Trace-Id"); h != "" {
		t.Fatalf("Szx-Trace-Id = %q with tracing disabled", h)
	}
	resp, err = http.Get(baseURL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/requests with tracing disabled: %d, want 404", resp.StatusCode)
	}
}

// TestServiceStreamTraceHasPipeFrames checks the streaming path: the
// pipelined engine must attribute per-frame slot occupancy to the request
// trace it finds in the context.
func TestServiceStreamTraceHasPipeFrames(t *testing.T) {
	telemetry.Reset()
	_, c, baseURL := newTestServer(t, service.Config{
		ChunkValues: 4096, StreamParallelism: 2, TraceSample: 1,
	})
	vals := testField(64_000, 4)
	tr := trace.New("stream-op")
	ctx := trace.NewContext(context.Background(), tr)
	rc, err := c.StreamCompress(ctx, bytes.NewReader(f32Bytes(vals)), client.Params{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, rc); err != nil {
		t.Fatal(err)
	}
	rc.Close()

	var v trace.View
	deadline := time.Now().Add(5 * time.Second)
	for {
		var ok bool
		if v, ok = fetchTrace(t, baseURL, tr.ID()); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream trace %s never retained", tr.ID())
		}
		time.Sleep(time.Millisecond)
	}
	frames := 0
	for _, s := range v.Spans {
		if s.Name == "pipe_frame" {
			frames++
		}
	}
	// 64k values at 4096/chunk = 16 frames.
	if frames != 16 {
		t.Fatalf("pipe_frame spans = %d, want 16 (spans: %v)", frames, v.Spans)
	}
	if v.Name != "stream_compress" {
		t.Fatalf("endpoint = %q", v.Name)
	}
}

// TestAdmissionGaugeSymmetry drives every admission outcome — happy path,
// queue-full 429, wait-timeout 429, draining 503, client-cancelled 499 —
// and asserts the queue-depth and in-flight gauges return to exactly zero
// afterwards: no denial path may leak a gauge increment.
func TestAdmissionGaugeSymmetry(t *testing.T) {
	waitZeroGauges := func(t *testing.T) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for telemetry.ServiceQueueDepth.Load() != 0 || telemetry.ServiceInFlight.Load() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("gauges stuck: queue_depth=%d in_flight=%d",
					telemetry.ServiceQueueDepth.Load(), telemetry.ServiceInFlight.Load())
			}
			time.Sleep(time.Millisecond)
		}
	}

	cases := []struct {
		name    string
		cfg     service.Config
		rejects *telemetry.Counter // incremented by the scenario's denial, nil for happy path
		run     func(t *testing.T, srv *service.Server, c *client.Client, baseURL string)
	}{
		{
			name: "happy",
			cfg:  service.Config{},
			run: func(t *testing.T, _ *service.Server, c *client.Client, _ string) {
				if _, err := c.Compress(context.Background(), testField(4096, 20), client.Params{}); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name:    "queue_full_429",
			cfg:     service.Config{MaxInFlight: 1, MaxQueue: -1, QueueWait: 10 * time.Second},
			rejects: &telemetry.ServiceRejectedQueueFull,
			run: func(t *testing.T, srv *service.Server, c *client.Client, baseURL string) {
				release := holdRequest(t, baseURL, srv, 1)
				defer release()
				_, err := c.Compress(context.Background(), testField(64, 21), client.Params{})
				var se *client.Error
				if !asClientError(err, &se) || se.Status != http.StatusTooManyRequests {
					t.Fatalf("want 429, got %v", err)
				}
			},
		},
		{
			name:    "wait_timeout_429",
			cfg:     service.Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: 30 * time.Millisecond},
			rejects: &telemetry.ServiceRejectedWaitTimeout,
			run: func(t *testing.T, srv *service.Server, c *client.Client, baseURL string) {
				release := holdRequest(t, baseURL, srv, 1)
				defer release()
				_, err := c.Compress(context.Background(), testField(64, 22), client.Params{})
				var se *client.Error
				if !asClientError(err, &se) || se.Status != http.StatusTooManyRequests {
					t.Fatalf("want 429 after queue wait, got %v", err)
				}
			},
		},
		{
			name:    "draining_503",
			cfg:     service.Config{},
			rejects: &telemetry.ServiceRejectedDraining,
			run: func(t *testing.T, srv *service.Server, c *client.Client, _ string) {
				srv.BeginDrain()
				_, err := c.Compress(context.Background(), testField(64, 23), client.Params{})
				var se *client.Error
				if !asClientError(err, &se) || se.Status != http.StatusServiceUnavailable {
					t.Fatalf("want 503 while draining, got %v", err)
				}
			},
		},
		{
			// A disconnect the HTTP/1.1 server can actually observe: the
			// client bails mid-upload while the handler is reading the body.
			// (Cancelling while *queued* is invisible over HTTP/1.1 — the
			// server only watches the connection once the body has been
			// consumed — so that denial path is pinned at the admission layer
			// by TestAdmitCancelledWhileQueued instead.)
			name:    "cancelled_mid_upload_499",
			cfg:     service.Config{},
			rejects: &telemetry.ServiceCancelledRequests,
			run: func(t *testing.T, _ *service.Server, _ *client.Client, baseURL string) {
				pr, pw := io.Pipe()
				errCh := make(chan error, 1)
				go func() {
					req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/compress?t=f32", pr)
					if err != nil {
						errCh <- err
						return
					}
					resp, err := http.DefaultClient.Do(req)
					if resp != nil {
						resp.Body.Close()
					}
					errCh <- err
				}()
				pw.Write(make([]byte, 8)) // partial payload: handler is mid-read
				pw.CloseWithError(errors.New("client bailed mid-upload"))
				<-errCh // outcome (499 or transport error) doesn't matter, only the server-side accounting
			},
		},
		{
			// The hedge-loser path: a ClusterClient races a slow node against
			// a fast one; the fast replica wins and the loser's request is
			// context-cancelled. The slow node stalls BEFORE its service
			// handler runs and the payload is too large for kernel socket
			// buffers, so when the stall ends the loser's admission slot is
			// taken and then unwound through the 499 body-read path — the
			// same accounting as any mid-upload disconnect, triggered here by
			// hedging instead of a flaky client.
			name:    "hedge_loser_cancelled_499",
			cfg:     service.Config{},
			rejects: &telemetry.ServiceCancelledRequests,
			run: func(t *testing.T, _ *service.Server, _ *client.Client, baseURL string) {
				slowSrv := service.New(service.Config{DisableTracing: true})
				gate := make(chan struct{})
				slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					<-gate // hold the loser pre-admission until the winner has won
					slowSrv.Handler().ServeHTTP(w, r)
				}))
				defer slow.Close()

				cc, err := client.NewCluster(client.ClusterConfig{
					Nodes:        []string{slow.URL, baseURL}, // ordered: slow primary, fast hedge target
					Policy:       client.PolicyOrdered,
					Hedge:        client.HedgePolicy{Delay: 5 * time.Millisecond, Budget: 1},
					Retry:        client.RetryPolicy{MaxAttempts: 1},
					PollInterval: -1, // no background polling; peers default to routable
				})
				if err != nil {
					t.Fatalf("NewCluster: %v", err)
				}
				defer cc.Close()

				fired := telemetry.ClusterHedgesFired.Load()
				won := telemetry.ClusterHedgesWon.Load()
				// 8 MiB of floats: far beyond loopback socket buffering, so
				// the loser's upload cannot complete before its cancellation
				// and the slow node must observe the broken body.
				if _, err := cc.Compress(context.Background(), testField(2<<20, 24), client.Params{}); err != nil {
					t.Fatalf("hedged compress: %v", err)
				}
				close(gate)
				if got := telemetry.ClusterHedgesFired.Load(); got != fired+1 {
					t.Errorf("hedges fired = %d, want %d", got, fired+1)
				}
				if got := telemetry.ClusterHedgesWon.Load(); got != won+1 {
					t.Errorf("hedges won = %d, want %d", got, won+1)
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			telemetry.Reset()
			srv, c, baseURL := newTestServer(t, tc.cfg)
			before := int64(0)
			if tc.rejects != nil {
				before = tc.rejects.Load()
			}
			tc.run(t, srv, c, baseURL)
			if tc.rejects != nil {
				// The client can see its error a beat before the server-side
				// admission path finishes counting the denial.
				deadline := time.Now().Add(5 * time.Second)
				for tc.rejects.Load() <= before {
					if time.Now().After(deadline) {
						t.Errorf("denial counter did not move")
						break
					}
					time.Sleep(time.Millisecond)
				}
			}
			waitZeroGauges(t)
		})
	}
}

func asClientError(err error, target **client.Error) bool {
	return errors.As(err, target)
}

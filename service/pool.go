package service

import (
	"io"
	"sync"

	szx "repro"
)

// scratch is the per-request working set for the buffered endpoints: the
// raw body bytes, the decoded value views, warm Codec handles for both
// element types, and an output staging buffer. One scratch serves one
// request at a time; the pools recycle them across requests so that in
// steady state the whole compress/decompress path — body read included —
// allocates nothing.
type scratch struct {
	raw   []byte // request body, reused capacity
	out   []byte // response staging, reused capacity
	f32   []float32
	f64   []float64
	c32   *szx.Codec[float32]
	c64   *szx.Codec[float64]
	class int // pool index this scratch was drawn from
	hint  int // declared body size for this lease (0 = unknown)
}

// Scratch buffers are size-classed so small requests never pay big-request
// buffer costs. Historically there was one pool, and its buffers grew to
// the largest body ever seen — after a single 8 MiB request, every 4 KiB
// request leased (and touched, and kept hot) an 8 MiB working set. Now a
// request is routed by its Content-Length to the smallest class that fits,
// and on release the scratch is re-classed by the capacity it actually
// retains: a small-class scratch that absorbed an oversized chunked upload
// migrates to the class its buffers now belong to instead of polluting the
// small pool. Bodies beyond the largest class share an overflow pool.
var scratchClassSizes = [...]int{4 << 10, 64 << 10, 1 << 20, 8 << 20}

// scratchOverflow indexes the pool for bodies beyond the largest class.
const scratchOverflow = len(scratchClassSizes)

var scratchPools [scratchOverflow + 1]sync.Pool

func init() {
	for i := range scratchPools {
		scratchPools[i].New = func() any {
			return &scratch{
				c32: szx.NewCodec[float32](szx.Options{}),
				c64: szx.NewCodec[float64](szx.Options{}),
			}
		}
	}
}

// classForSize returns the index of the smallest class holding n bytes.
func classForSize(n int64) int {
	for i, sz := range scratchClassSizes {
		if n <= int64(sz) {
			return i
		}
	}
	return scratchOverflow
}

// getScratch leases a scratch sized for a body of sizeHint bytes (a
// request's Content-Length; <= 0 means unknown, which routes to the middle
// 64 KiB class — the historical default buffer size).
func getScratch(sizeHint int64) *scratch {
	if sizeHint <= 0 {
		sizeHint = 64 << 10
	}
	cl := classForSize(sizeHint)
	sc := scratchPools[cl].Get().(*scratch)
	sc.class = cl
	sc.hint = int(sizeHint)
	return sc
}

// putScratch returns a scratch to the pool of the class its retained
// buffers actually fit, which is what keeps the small-class pools small: a
// scratch that served a body larger than its class (lying or absent
// Content-Length) carries big buffers now, and re-classing moves those to
// the big pools where they are an asset instead of a liability.
func putScratch(sc *scratch) {
	sc.class = classForSize(int64(sc.footprint()))
	sc.hint = 0
	scratchPools[sc.class].Put(sc)
}

// footprint is the largest buffer this scratch retains, in bytes — the
// size-class signal. (The Codec handles hold internal buffers too, but they
// track the same request sizes as raw/out, so the externally visible
// buffers are an honest proxy.)
func (sc *scratch) footprint() int {
	f := cap(sc.raw)
	if c := cap(sc.out); c > f {
		f = c
	}
	if c := 4 * cap(sc.f32); c > f {
		f = c
	}
	if c := 8 * cap(sc.f64); c > f {
		f = c
	}
	return f
}

// readBody reads r to EOF into sc.raw, reusing its capacity, and enforces
// the body-size cap. It is io.ReadAll minus the fresh allocation per call:
// the buffer is seeded at the scratch's class size (or the declared
// Content-Length when that is larger), then grows by doubling only if the
// body outruns its declaration. Returns errBodyTooLarge once the read
// crosses max.
func (sc *scratch) readBody(r io.Reader, max int64) ([]byte, error) {
	buf := sc.raw[:0]
	if seed := sc.seedSize(max); cap(buf) < seed {
		buf = make([]byte, 0, seed)
	}
	for {
		if int64(len(buf)) > max {
			sc.raw = buf
			return nil, errBodyTooLarge
		}
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			sc.raw = buf
			if int64(len(buf)) > max {
				return nil, errBodyTooLarge
			}
			return buf, nil
		}
		if err != nil {
			sc.raw = buf
			return nil, err
		}
	}
}

// seedSize picks the initial body-buffer capacity: the class size, bumped
// to the declared Content-Length for overflow-class bodies (so an 80 MiB
// upload is one allocation, not a doubling ladder), and clamped to the
// body cap so a hostile Content-Length cannot make us allocate more than
// we would ever accept.
func (sc *scratch) seedSize(max int64) int {
	seed := 64 << 10
	if sc.class < scratchOverflow {
		seed = scratchClassSizes[sc.class]
	} else if sc.hint > seed {
		seed = sc.hint
	}
	if int64(seed) > max {
		seed = int(max) + 1
	}
	return seed
}

// errBodyTooLarge marks a request body that exceeded Config.MaxBodyBytes.
type bodyTooLargeError struct{}

func (bodyTooLargeError) Error() string { return "request body exceeds the configured limit" }

var errBodyTooLarge = bodyTooLargeError{}

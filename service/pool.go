package service

import (
	"io"
	"sync"

	szx "repro"
)

// scratch is the per-request working set for the buffered endpoints: the
// raw body bytes, the decoded value views, warm Codec handles for both
// element types, and an output staging buffer. One scratch serves one
// request at a time; the pool recycles them across requests so that in
// steady state the whole compress/decompress path — body read included —
// allocates nothing.
type scratch struct {
	raw []byte // request body, reused capacity
	out []byte // response staging, reused capacity
	f32 []float32
	f64 []float64
	c32 *szx.Codec[float32]
	c64 *szx.Codec[float64]
}

var scratchPool = sync.Pool{
	New: func() any {
		return &scratch{
			c32: szx.NewCodec[float32](szx.Options{}),
			c64: szx.NewCodec[float64](szx.Options{}),
		}
	},
}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

// readBody reads r to EOF into sc.raw, reusing its capacity, and enforces
// the body-size cap. It is io.ReadAll minus the fresh allocation per call:
// the buffer grows to the high-water mark of request sizes and then stays.
// Returns errBodyTooLarge once the read crosses max.
func (sc *scratch) readBody(r io.Reader, max int64) ([]byte, error) {
	buf := sc.raw[:0]
	if cap(buf) == 0 {
		buf = make([]byte, 0, 64<<10)
	}
	for {
		if int64(len(buf)) > max {
			sc.raw = buf
			return nil, errBodyTooLarge
		}
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			sc.raw = buf
			if int64(len(buf)) > max {
				return nil, errBodyTooLarge
			}
			return buf, nil
		}
		if err != nil {
			sc.raw = buf
			return nil, err
		}
	}
}

// errBodyTooLarge marks a request body that exceeded Config.MaxBodyBytes.
type bodyTooLargeError struct{}

func (bodyTooLargeError) Error() string { return "request body exceeds the configured limit" }

var errBodyTooLarge = bodyTooLargeError{}

package service

import (
	"bytes"
	"testing"

	szx "repro"
)

// TestScratchSizeClasses pins the size-class routing: a small request after
// a big one must not inherit the big request's buffers. Pre-class pooling
// had exactly this failure — one 8 MiB body grew the (single) pool's
// scratch, and every later 4 KiB request leased an 8 MiB working set.
func TestScratchSizeClasses(t *testing.T) {
	big := make([]byte, 8<<20)
	sc := getScratch(int64(len(big)))
	if sc.class != classForSize(8<<20) {
		t.Fatalf("8 MiB hint routed to class %d, want %d", sc.class, classForSize(8<<20))
	}
	if _, err := sc.readBody(bytes.NewReader(big), 1<<30); err != nil {
		t.Fatal(err)
	}
	putScratch(sc)

	// A small-hint lease must come from the small pool, and whatever it
	// gets must carry small buffers: the 8 MiB scratch re-classed itself on
	// release and is unreachable from here.
	small := make([]byte, 16<<10)
	for i := 0; i < 8; i++ {
		sc := getScratch(int64(len(small)))
		if got, want := sc.class, classForSize(16<<10); got != want {
			t.Fatalf("16 KiB hint routed to class %d, want %d", got, want)
		}
		if cap(sc.raw) > scratchClassSizes[sc.class] {
			t.Fatalf("small-class scratch carries a %d-byte body buffer (class cap %d)",
				cap(sc.raw), scratchClassSizes[sc.class])
		}
		if _, err := sc.readBody(bytes.NewReader(small), 1<<30); err != nil {
			t.Fatal(err)
		}
		if cap(sc.raw) > scratchClassSizes[sc.class] {
			t.Fatalf("16 KiB body grew the buffer to %d bytes (class cap %d)",
				cap(sc.raw), scratchClassSizes[sc.class])
		}
		putScratch(sc)
	}
}

// TestScratchReclassOnRelease: a scratch whose body outran its class (no or
// lying Content-Length) migrates to the class its buffers now fit on
// release, instead of returning fat to the small pool.
func TestScratchReclassOnRelease(t *testing.T) {
	sc := getScratch(0) // unknown length: middle class
	if got, want := sc.class, classForSize(64<<10); got != want {
		t.Fatalf("unknown length routed to class %d, want %d", got, want)
	}
	body := make([]byte, 3<<20) // outruns the 64 KiB class
	if _, err := sc.readBody(bytes.NewReader(body), 1<<30); err != nil {
		t.Fatal(err)
	}
	putScratch(sc)
	if got, want := sc.class, classForSize(int64(cap(sc.raw))); got != want {
		t.Fatalf("released scratch classed %d, want %d for its %d-byte buffer",
			got, want, cap(sc.raw))
	}
	if sc.class < 2 {
		t.Fatalf("3 MiB buffer re-classed into small class %d", sc.class)
	}
}

// TestClassForSize pins the boundaries.
func TestClassForSize(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		want int
	}{
		{0, 0}, {1, 0}, {4 << 10, 0}, {4<<10 + 1, 1},
		{64 << 10, 1}, {64<<10 + 1, 2}, {1 << 20, 2}, {1<<20 + 1, 3},
		{8 << 20, 3}, {8<<20 + 1, scratchOverflow}, {1 << 30, scratchOverflow},
	} {
		if got := classForSize(tc.n); got != tc.want {
			t.Errorf("classForSize(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestSmallBodyZeroAllocs is the small-payload twin of
// TestPooledPathZeroAllocs: a warm 16 KiB compress through the pooled path
// must allocate nothing AND stay inside its size class — the two properties
// the size-classed pool exists for.
func TestSmallBodyZeroAllocs(t *testing.T) {
	vals := make([]float32, 4*1024) // 16 KiB body
	for i := range vals {
		vals[i] = float32(i%31) * 0.25
	}
	raw := make([]byte, 4*len(vals))
	for i, v := range vals {
		putF32(raw[4*i:], v)
	}
	rd := bytes.NewReader(raw)
	opt := szx.Options{ErrorBound: 1e-3}
	sc := getScratch(int64(len(raw))) // hold it so the pool can't evict mid-test
	defer putScratch(sc)

	run := func() {
		rd.Reset(raw)
		body, err := sc.readBody(rd, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		sc.f32 = bytesToF32(sc.f32, body)
		sc.c32.SetOptions(opt)
		if _, err := sc.c32.Compress(sc.f32); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if n := testing.AllocsPerRun(20, run); n > 0 {
		t.Fatalf("small-body pooled path allocates %.1f times per request; want 0", n)
	}
	if cap(sc.raw) > scratchClassSizes[classForSize(int64(len(raw)))] {
		t.Fatalf("16 KiB requests grew the body buffer to %d bytes", cap(sc.raw))
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"

	szx "repro"
	"repro/internal/wireconv"
	"repro/telemetry"
	"repro/telemetry/trace"
)

const contentTypeBinary = "application/octet-stream"

// parseOptions maps the query string onto szx.Options plus the element
// width. Recognized keys: t (f32|f64), e (error bound), ratio (fixed-ratio
// target, mutually exclusive with e), mode (abs|rel), block (block size),
// workers (0 serial, -1 server max, else capped at the server max).
func (s *Server) parseOptions(q url.Values) (opt szx.Options, elemSize int, err error) {
	opt = szx.Options{ErrorBound: s.cfg.DefaultErrorBound, Mode: szx.BoundAbsolute}
	elemSize = 4
	switch t := q.Get("t"); t {
	case "", "f32":
	case "f64":
		elemSize = 8
	default:
		return opt, 0, fmt.Errorf("unknown element type %q (want f32 or f64)", t)
	}
	if e := q.Get("e"); e != "" {
		v, perr := strconv.ParseFloat(e, 64)
		if perr != nil || v <= 0 {
			return opt, 0, fmt.Errorf("bad error bound %q", e)
		}
		opt.ErrorBound = v
	}
	if rt := q.Get("ratio"); rt != "" {
		v, perr := strconv.ParseFloat(rt, 64)
		if perr != nil {
			return opt, 0, fmt.Errorf("bad target ratio %q", rt)
		}
		if q.Get("e") != "" {
			return opt, 0, fmt.Errorf("ratio and e are mutually exclusive")
		}
		// Fixed-ratio mode replaces the bound entirely; the server default
		// bound must not linger or validation would see a conflict.
		opt.ErrorBound = 0
		opt.TargetRatio = v
	}
	switch m := q.Get("mode"); m {
	case "", "abs":
	case "rel":
		opt.Mode = szx.BoundRelative
	default:
		return opt, 0, fmt.Errorf("unknown bound mode %q (want abs or rel)", m)
	}
	if b := q.Get("block"); b != "" {
		v, perr := strconv.Atoi(b)
		if perr != nil {
			return opt, 0, fmt.Errorf("bad block size %q", b)
		}
		opt.BlockSize = v
	}
	if ws := q.Get("workers"); ws != "" {
		v, perr := strconv.Atoi(ws)
		if perr != nil || v < -1 {
			return opt, 0, fmt.Errorf("bad workers %q", ws)
		}
		if v == -1 || v > s.cfg.MaxWorkers {
			v = s.cfg.MaxWorkers
		}
		opt.Workers = v
	}
	return opt, elemSize, nil
}

// readRequestBody pulls the whole body through the scratch buffer,
// translating size and disconnect failures into wire responses. A nil
// slice return means the response has already been written. tr (nil-safe)
// gets the read_body span and the payload size.
func readRequestBody(w http.ResponseWriter, r *http.Request, sc *scratch, max int64, tr *trace.Trace) []byte {
	sp := tr.StartSpan("read_body")
	body, err := sc.readBody(r.Body, max)
	sp.End()
	if err != nil {
		if errors.Is(err, errBodyTooLarge) {
			telemetry.ServiceBadRequests.Inc()
			tr.SetError(err.Error())
			writeError(w, http.StatusRequestEntityTooLarge,
				wireError{Code: codeTooLarge, Message: err.Error()}, 0)
			return nil
		}
		// A read error on the request body means the client went away (or
		// the connection broke) mid-upload; nobody is listening for a body.
		telemetry.ServiceCancelledRequests.Inc()
		tr.SetError("client closed request during body read")
		w.WriteHeader(statusClientClosedRequest)
		return nil
	}
	if len(body) == 0 {
		tr.SetError("empty request body")
		badRequest(w, "empty request body")
		return nil
	}
	telemetry.ServiceBytesIn.Add(int64(len(body)))
	tr.SetBytes(int64(len(body)), -1)
	return body
}

// handleCompress buffers the raw float payload, compresses it on a pooled
// codec, and returns the SZx stream.
func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	rq, w, r, ok := s.begin(w, r, &telemetry.ServiceRequestsCompress, "compress")
	if !ok {
		return
	}
	defer rq.end()

	opt, elemSize, err := s.parseOptions(r.URL.Query())
	if err != nil {
		rq.badRequest(w, err.Error())
		return
	}
	sc := getScratch(r.ContentLength)
	defer putScratch(sc)
	body := readRequestBody(w, r, sc, s.cfg.MaxBodyBytes, rq.tr)
	if body == nil {
		return
	}
	if len(body)%elemSize != 0 {
		rq.badRequest(w, fmt.Sprintf("body length %d is not a multiple of the %d-byte element size",
			len(body), elemSize))
		return
	}
	// Small-request fast path: below the adaptive engine's own serial
	// threshold, even entering the parallel path is pure setup cost, so a
	// 16 KiB request with ?workers=-1 runs serially no matter what it asked.
	if opt.Workers != 0 && len(body) < szx.ParallelMinBytes() {
		opt.Workers = 0
	}
	if rq.tr != nil {
		// The codec reports resolve_plan and encode/gather phases itself.
		opt.Spans = rq.tr
	}

	var comp []byte
	sp := rq.tr.StartSpan("unpack_body")
	if elemSize == 4 {
		sc.f32 = bytesToF32(sc.f32, body)
		sp.End()
		sc.c32.SetOptions(opt)
		comp, err = sc.c32.Compress(sc.f32)
	} else {
		sc.f64 = bytesToF64(sc.f64, body)
		sp.End()
		sc.c64.SetOptions(opt)
		comp, err = sc.c64.Compress(sc.f64)
	}
	if err != nil {
		rq.fail(w, err)
		return
	}
	sp = rq.tr.StartSpan("write_response")
	writeBinary(w, comp)
	sp.End()
}

// handleDecompress buffers the compressed payload — a single SZx stream or
// an SZXS streaming container, auto-detected — decodes it fully in memory,
// and returns the raw floats. Decoding completes before the first response
// byte, so corrupt input always yields a clean 4xx, never a truncated 200.
func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	rq, w, r, ok := s.begin(w, r, &telemetry.ServiceRequestsDecompress, "decompress")
	if !ok {
		return
	}
	defer rq.end()

	opt, _, err := s.parseOptions(r.URL.Query())
	if err != nil {
		rq.badRequest(w, err.Error())
		return
	}
	sc := getScratch(r.ContentLength)
	defer putScratch(sc)
	body := readRequestBody(w, r, sc, s.cfg.MaxBodyBytes, rq.tr)
	if body == nil {
		return
	}

	if isStreamContainer(body) {
		// SZXS container: decode chunk by chunk with the serial container
		// reader (no goroutines, fully deterministic) into the reused
		// value buffer.
		sp := rq.tr.StartSpan("decode")
		sr := szx.NewReader(bytes.NewReader(body))
		vals := sc.f32[:0]
		for {
			if len(vals) == cap(vals) {
				vals = append(vals, 0)[:len(vals)]
			}
			n, rerr := sr.Read(vals[len(vals):cap(vals)])
			vals = vals[:len(vals)+n]
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				sc.f32 = vals
				sp.End()
				rq.fail(w, rerr)
				return
			}
		}
		sc.f32 = vals
		sp.End()
		rq.writeF32(w, sc, vals)
		return
	}

	h, err := szx.Info(body)
	if err != nil {
		rq.fail(w, err)
		return
	}
	// The header gives the exact decoded size, so the serial shortcut keys
	// on output bytes — the same signal the adaptive engine itself uses.
	es := 4
	if h.Type == szx.TypeFloat64 {
		es = 8
	}
	if opt.Workers != 0 && es*h.N < szx.ParallelMinBytes() {
		opt.Workers = 0
	}
	sp := rq.tr.StartSpan("decode")
	if h.Type == szx.TypeFloat64 {
		sc.c64.SetOptions(opt)
		vals, derr := sc.c64.Decompress(body)
		sp.End()
		if derr != nil {
			rq.fail(w, derr)
			return
		}
		rq.writeF64(w, sc, vals)
		return
	}
	sc.c32.SetOptions(opt)
	vals, derr := sc.c32.Decompress(body)
	sp.End()
	if derr != nil {
		rq.fail(w, derr)
		return
	}
	rq.writeF32(w, sc, vals)
}

// handleStreamCompress pumps an unbounded raw float32 body through the
// pipelined engine and emits an SZXS container as it goes. Memory is the
// pipeline window regardless of body size. Because bytes stream out before
// the body finishes, a mid-stream failure can only truncate the response —
// SZXS's terminator frame lets the receiver detect that.
func (s *Server) handleStreamCompress(w http.ResponseWriter, r *http.Request) {
	rq, w, r, ok := s.begin(w, r, &telemetry.ServiceRequestsStreamCompress, "stream_compress")
	if !ok {
		return
	}
	defer rq.end()

	q := r.URL.Query()
	if t := q.Get("t"); t != "" && t != "f32" {
		rq.badRequest(w, "streaming endpoints carry float32 only")
		return
	}
	opt, _, err := s.parseOptions(q)
	if err != nil {
		rq.badRequest(w, err.Error())
		return
	}
	// The pipeline surfaces errors mid-stream as truncation; option errors
	// are knowable now, while a clean 400 is still possible.
	if verr := opt.Validate(); verr != nil {
		rq.fail(w, verr)
		return
	}

	chunkBytes := 4 * s.cfg.ChunkValues
	sc := getScratch(int64(chunkBytes))
	defer putScratch(sc)
	buf := sc.raw[:0]
	if cap(buf) < chunkBytes {
		buf = make([]byte, 0, chunkBytes)
	}
	buf = buf[:chunkBytes]
	defer func() { sc.raw = buf }()

	// Both streaming endpoints read the request body while writing the
	// response. Go's HTTP/1.x server is half-duplex by default — body
	// reads fail once the response starts — so opt in to full duplex
	// (no-op on HTTP/2, where streams are always bidirectional).
	_ = http.NewResponseController(w).EnableFullDuplex()

	w.Header().Set("Content-Type", contentTypeBinary)
	cw := &countingWriter{w: w}
	// The pipeline picks the request trace out of r.Context() itself and
	// records one pipe_frame span per emitted frame.
	pw := szx.NewPipeWriterContext(r.Context(), cw, opt, s.cfg.ChunkValues, s.cfg.StreamParallelism)
	var bodyIn int64
	defer func() {
		telemetry.ServiceBytesOut.Add(cw.n)
		rq.tr.SetBytes(bodyIn, -1)
	}()

	for {
		n, rerr := io.ReadFull(r.Body, buf)
		if n > 0 {
			telemetry.ServiceBytesIn.Add(int64(n))
			bodyIn += int64(n)
			if n%4 != 0 {
				// Truncated trailing element: the upload broke mid-float.
				telemetry.ServiceBadRequests.Inc()
				rq.tr.SetError("body truncated mid-element")
				pw.Abort()
				_ = pw.Close()
				return
			}
			sc.f32 = bytesToF32(sc.f32, buf[:n])
			if werr := pw.Write(sc.f32); werr != nil {
				countStreamFailure(r, werr)
				rq.tr.SetError(werr.Error())
				pw.Abort()
				_ = pw.Close()
				return
			}
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			break
		}
		if rerr != nil {
			telemetry.ServiceCancelledRequests.Inc()
			rq.tr.SetError("client closed request during body read")
			pw.Abort()
			_ = pw.Close()
			return
		}
	}
	if cerr := pw.Close(); cerr != nil {
		countStreamFailure(r, cerr)
		rq.tr.SetError(cerr.Error())
	}
}

// handleStreamDecompress pumps an SZXS container body through the
// pipelined reader and emits raw float32 bytes. An error before the first
// output byte yields a clean 4xx; after that the response truncates.
func (s *Server) handleStreamDecompress(w http.ResponseWriter, r *http.Request) {
	rq, w, r, ok := s.begin(w, r, &telemetry.ServiceRequestsStreamDecompress, "stream_decompress")
	if !ok {
		return
	}
	defer rq.end()

	sc := getScratch(int64(4 * s.cfg.ChunkValues))
	defer putScratch(sc)
	vals := sc.f32[:0]
	if cap(vals) < s.cfg.ChunkValues {
		vals = make([]float32, 0, s.cfg.ChunkValues)
	}
	vals = vals[:cap(vals)]
	out := sc.out[:0]
	if cap(out) < 4*len(vals) {
		out = make([]byte, 0, 4*len(vals))
	}
	out = out[:4*len(vals)]
	defer func() { sc.f32, sc.out = vals, out }()

	// See handleStreamCompress: body reads continue after response writes
	// begin, which HTTP/1.x only allows in full-duplex mode.
	_ = http.NewResponseController(w).EnableFullDuplex()

	cr := &countingReader{r: r.Body}
	// As on the compress side, the pipeline reads the request trace from
	// r.Context() and records per-frame spans.
	pr := szx.NewPipeReaderContext(r.Context(), cr, s.cfg.StreamParallelism)
	defer pr.Close()
	defer func() {
		telemetry.ServiceBytesIn.Add(cr.n)
		rq.tr.SetBytes(cr.n, -1)
	}()

	wrote := false
	for {
		n, rerr := pr.Read(vals)
		if n > 0 {
			for i, v := range vals[:n] {
				binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
			}
			if !wrote {
				w.Header().Set("Content-Type", contentTypeBinary)
				wrote = true
			}
			if _, werr := w.Write(out[:4*n]); werr != nil {
				telemetry.ServiceCancelledRequests.Inc()
				rq.tr.SetError("client closed request during response write")
				return
			}
			telemetry.ServiceBytesOut.Add(int64(4 * n))
		}
		if rerr == io.EOF {
			return
		}
		if rerr != nil {
			if !wrote {
				rq.fail(w, rerr)
				return
			}
			// Headers are gone; the only honest signal is truncation.
			countStreamFailure(r, rerr)
			rq.tr.SetError(rerr.Error())
			return
		}
	}
}

// countStreamFailure attributes a mid-stream pipeline error: a cancelled
// request context is the client's doing, anything else is a decode/encode
// failure worth the bad-request counter.
func countStreamFailure(r *http.Request, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || r.Context().Err() != nil {
		telemetry.ServiceCancelledRequests.Inc()
		return
	}
	telemetry.ServiceBadRequests.Inc()
}

// isStreamContainer reports whether b starts with the SZXS container magic.
func isStreamContainer(b []byte) bool {
	return len(b) >= 4 && b[0] == 'S' && b[1] == 'Z' && b[2] == 'X' && b[3] == 'S'
}

// writeBinary sends a fully materialized binary response.
func writeBinary(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Type", contentTypeBinary)
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	n, _ := w.Write(b)
	telemetry.ServiceBytesOut.Add(int64(n))
}

// writeF32 stages vals as little-endian bytes in the scratch and sends
// them.
func writeF32(w http.ResponseWriter, sc *scratch, vals []float32) {
	need := 4 * len(vals)
	out := sc.out[:0]
	if cap(out) < need {
		out = make([]byte, 0, need)
	}
	out = out[:need]
	wireconv.PutF32(out, vals)
	sc.out = out
	writeBinary(w, out)
}

func writeF64(w http.ResponseWriter, sc *scratch, vals []float64) {
	need := 8 * len(vals)
	out := sc.out[:0]
	if cap(out) < need {
		out = make([]byte, 0, need)
	}
	out = out[:need]
	wireconv.PutF64(out, vals)
	sc.out = out
	writeBinary(w, out)
}

// bytesToF32 decodes little-endian float32s into dst's reused capacity.
func bytesToF32(dst []float32, b []byte) []float32 { return wireconv.F32(dst[:0], b) }

func bytesToF64(dst []float64, b []byte) []float64 { return wireconv.F64(dst[:0], b) }

// countingWriter / countingReader tally streamed bytes for the service
// byte counters without buffering anything.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

package service

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"time"

	"repro/service/cluster"
	"repro/telemetry"
)

// newNodeID mints a random node identity for servers that weren't given
// one. Stability across restarts is an operator concern (-node-id); the
// default only needs to be unique within a fleet so peers can tell a
// restarted node from a renamed one.
func newNodeID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a fixed
		// fallback keeps this path total without inventing entropy.
		return "szx-node"
	}
	return "szx-" + hex.EncodeToString(b[:])
}

// handleClusterInfo serves GET /v1/cluster/info: this node's identity,
// build, and instantaneous load in the wire shape the membership poller
// consumes (cluster.Info). It is the one endpoint peers hit every poll
// interval, so it reads four atomics and marshals a small struct — no
// admission slot, no allocation beyond the JSON encoder.
func (s *Server) handleClusterInfo(w http.ResponseWriter, _ *http.Request) {
	bi := telemetry.GetBuildInfo()
	info := cluster.Info{
		NodeID:      s.nodeID,
		Version:     bi.Version,
		GoVersion:   bi.GoVersion,
		Kernels:     bi.Kernels,
		MaxInFlight: s.cfg.MaxInFlight,
		InFlight:    s.adm.inFlight(),
		QueueDepth:  s.adm.queueDepth(),
		Draining:    s.adm.draining(),
		UptimeSec:   int64(time.Since(s.start) / time.Second),
	}
	w.Header().Set("Content-Type", "application/json")
	if info.Draining {
		// Mirror the readyz drain hint so pollers that only look at this
		// endpoint still learn when to back off.
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.QueueWait))
	}
	_ = json.NewEncoder(w).Encode(info)
}

// NodeID returns this server's cluster identity (the configured one, or
// the generated default).
func (s *Server) NodeID() string { return s.nodeID }

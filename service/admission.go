package service

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/telemetry"
)

// admission is the front door: a counting semaphore bounds concurrently
// executing requests, a bounded counter bounds how many may wait for a
// slot, and everything past that is shed immediately. The invariant is
// that total commitment (running + queued) is capped, so a burst can never
// pile unbounded goroutines — and their request bodies — onto the heap.
type admission struct {
	sem       chan struct{} // buffered to maxInFlight; len() = in-flight
	queued    atomic.Int64  // requests currently waiting on sem
	maxQueue  int64
	queueWait time.Duration

	drainOnce sync.Once
	drainCh   chan struct{} // closed when draining begins
	isDrain   atomic.Bool
}

func newAdmission(maxInFlight, maxQueue int, queueWait time.Duration) *admission {
	return &admission{
		sem:       make(chan struct{}, maxInFlight),
		maxQueue:  int64(maxQueue),
		queueWait: queueWait,
		drainCh:   make(chan struct{}),
	}
}

func (a *admission) beginDrain() {
	a.drainOnce.Do(func() {
		a.isDrain.Store(true)
		close(a.drainCh)
	})
}

func (a *admission) draining() bool   { return a.isDrain.Load() }
func (a *admission) inFlight() int    { return len(a.sem) }
func (a *admission) queueDepth() int  { return int(a.queued.Load()) }

// denial describes why admission refused a request.
type denial struct {
	status     int           // 429 or 503
	code       string        // wire error code
	msg        string        // human-readable detail
	retryAfter time.Duration // Retry-After hint
}

// admit tries to obtain an execution slot, queueing for up to queueWait.
// It returns (release, nil) on success — the caller MUST invoke release
// exactly once — or (nil, *denial) when the request should be shed.
// done is the request context's Done channel, so a client that hangs up
// while queued frees its queue slot immediately. traceID (may be "")
// becomes the queue-wait histogram's exemplar when this request sets a
// new maximum, linking the worst observed wait back to its trace.
func (a *admission) admit(done <-chan struct{}, traceID string) (func(), *denial) {
	if a.isDrain.Load() {
		telemetry.ServiceRejectedDraining.Inc()
		return nil, &denial{
			status: http.StatusServiceUnavailable, code: codeDraining,
			msg: "server is draining", retryAfter: a.queueWait,
		}
	}

	// Fast path: a slot is free right now; skip the queue accounting and
	// the timer entirely.
	select {
	case a.sem <- struct{}{}:
		telemetry.ServiceInFlight.Inc()
		telemetry.ServiceQueueWaits.Observe(0)
		return a.release, nil
	default:
	}

	// Saturated: take a queue slot or shed. The counter is optimistic —
	// increment, then check the bound — so two racing requests can't both
	// sneak under the cap.
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		telemetry.ServiceRejectedQueueFull.Inc()
		return nil, &denial{
			status: http.StatusTooManyRequests, code: codeOverloaded,
			msg: "admission queue full", retryAfter: a.queueWait,
		}
	}
	telemetry.ServiceQueueDepth.Inc()
	start := time.Now()
	timer := time.NewTimer(a.queueWait)
	defer func() {
		timer.Stop()
		a.queued.Add(-1)
		telemetry.ServiceQueueDepth.Dec()
	}()

	select {
	case a.sem <- struct{}{}:
		telemetry.ServiceInFlight.Inc()
		telemetry.ServiceQueueWaits.ObserveExemplar(time.Since(start).Nanoseconds(), traceID)
		return a.release, nil
	case <-timer.C:
		telemetry.ServiceRejectedWaitTimeout.Inc()
		return nil, &denial{
			status: http.StatusTooManyRequests, code: codeOverloaded,
			msg: "timed out waiting for an execution slot", retryAfter: a.queueWait,
		}
	case <-a.drainCh:
		telemetry.ServiceRejectedDraining.Inc()
		return nil, &denial{
			status: http.StatusServiceUnavailable, code: codeDraining,
			msg: "server is draining", retryAfter: a.queueWait,
		}
	case <-done:
		telemetry.ServiceCancelledRequests.Inc()
		return nil, &denial{
			status: statusClientClosedRequest, code: codeCancelled,
			msg: "client closed request while queued",
		}
	}
}

func (a *admission) release() {
	<-a.sem
	telemetry.ServiceInFlight.Dec()
}

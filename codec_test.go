package szx

import (
	"math"
	"testing"
)

func testCodecRoundTrip[T Float](t *testing.T, opt Options, frames int) {
	t.Helper()
	c := NewCodec[T](opt)
	if c.Options() != opt {
		t.Fatalf("Options() = %+v, want %+v", c.Options(), opt)
	}
	data := make([]T, 3000)
	for f := 0; f < frames; f++ {
		for i := range data {
			data[i] = T(math.Sin(float64(i)/30+float64(f))) * 5
		}
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		// The handle's buffer is only valid until the next call; keep a
		// copy to verify against the pass-through Into methods.
		kept := append([]byte(nil), comp...)
		dec, err := c.Decompress(kept)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != len(data) {
			t.Fatalf("frame %d: got %d values, want %d", f, len(dec), len(data))
		}
		for i := range dec {
			if d := math.Abs(float64(dec[i]) - float64(data[i])); !(d <= opt.ErrorBound) {
				t.Fatalf("frame %d: value %d error %g exceeds %g", f, i, d, opt.ErrorBound)
			}
		}
		// Pass-through Into methods must produce the identical stream and
		// values with caller-owned buffers.
		comp2, err := c.CompressInto(nil, data)
		if err != nil {
			t.Fatal(err)
		}
		if string(comp2) != string(kept) {
			t.Fatalf("frame %d: CompressInto stream differs from Compress", f)
		}
		dec2, err := c.DecompressInto(nil, kept)
		if err != nil {
			t.Fatal(err)
		}
		for i := range dec2 {
			if dec2[i] != dec[i] {
				t.Fatalf("frame %d: DecompressInto value %d differs", f, i)
			}
		}
	}
}

func TestCodecFloat32(t *testing.T) {
	testCodecRoundTrip[float32](t, Options{ErrorBound: 1e-3}, 3)
}

func TestCodecFloat64(t *testing.T) {
	testCodecRoundTrip[float64](t, Options{ErrorBound: 1e-7}, 3)
}

func TestCodecParallel(t *testing.T) {
	testCodecRoundTrip[float32](t, Options{ErrorBound: 1e-3, Workers: 4}, 2)
}

// TestCodecBufferReuse pins the documented aliasing contract: the slices
// returned by Compress and Decompress belong to the handle and are
// overwritten by the next call of the same kind.
func TestCodecBufferReuse(t *testing.T) {
	c := NewCodec[float32](Options{ErrorBound: 1e-3})
	data := testField(4000, 9)
	comp1, err := c.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	p1 := &comp1[0]
	comp2, err := c.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if &comp2[0] != p1 {
		t.Fatal("Compress did not reuse the handle's buffer")
	}
	dec1, err := c.Decompress(comp2)
	if err != nil {
		t.Fatal(err)
	}
	d1 := &dec1[0]
	dec2, err := c.Decompress(comp2)
	if err != nil {
		t.Fatal(err)
	}
	if &dec2[0] != d1 {
		t.Fatal("Decompress did not reuse the handle's buffer")
	}
}

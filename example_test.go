package szx_test

import (
	"bytes"
	"fmt"
	"math"

	szx "repro"
)

// The basic workflow: compress under an absolute bound, decompress, and
// rely on the per-value guarantee.
func Example() {
	data := make([]float32, 100000)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) / 100))
	}
	comp, err := szx.Compress(data, szx.Options{ErrorBound: 1e-3})
	if err != nil {
		panic(err)
	}
	dec, err := szx.Decompress(comp)
	if err != nil {
		panic(err)
	}
	maxErr := 0.0
	for i := range data {
		if d := math.Abs(float64(data[i]) - float64(dec[i])); d > maxErr {
			maxErr = d
		}
	}
	fmt.Println("bound respected:", maxErr <= 1e-3)
	// Output: bound respected: true
}

// Value-range-relative bounds resolve against the data's global range,
// like the REL bounds throughout the paper's evaluation.
func ExampleCompress_relative() {
	data := []float32{0, 250, 500, 750, 1000}
	comp, err := szx.Compress(data, szx.Options{ErrorBound: 1e-3, Mode: szx.BoundRelative})
	if err != nil {
		panic(err)
	}
	h, _ := szx.Info(comp)
	fmt.Printf("resolved absolute bound: %g\n", h.ErrBound)
	// Output: resolved absolute bound: 1
}

// DecompressRange decodes only the blocks overlapping the request.
func ExampleDecompressRange() {
	data := make([]float32, 10000)
	for i := range data {
		data[i] = float32(i)
	}
	comp, _ := szx.Compress(data, szx.Options{ErrorBound: 0.5})
	part, err := szx.DecompressRange(comp, 5000, 5003)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(part), "values near", int(part[0]))
	// Output: 3 values near 5000
}

// The streaming writer compresses unbounded sequences chunk by chunk.
func ExampleWriter() {
	var buf bytes.Buffer
	w := szx.NewWriter(&buf, szx.Options{ErrorBound: 1e-3}, 4096)
	for chunk := 0; chunk < 4; chunk++ {
		vals := make([]float32, 2500)
		if err := w.Write(vals); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	out, err := szx.NewReader(&buf).ReadAll()
	if err != nil {
		panic(err)
	}
	fmt.Println("streamed values:", len(out))
	// Output: streamed values: 10000
}

package szx

import (
	"math"
	"testing"
)

func buildArchive(t *testing.T) ([]byte, map[string][]float32) {
	t.Helper()
	aw := NewArchiveWriter(Options{ErrorBound: 1e-3})
	fields := map[string][]float32{
		"pressure":   testField(10000, 21),
		"density":    testField(10000, 22),
		"velocity-x": testField(5000, 23),
	}
	if err := aw.AddField("pressure", []int{100, 100}, fields["pressure"]); err != nil {
		t.Fatal(err)
	}
	if err := aw.AddField("density", []int{10, 10, 100}, fields["density"]); err != nil {
		t.Fatal(err)
	}
	if err := aw.AddField("velocity-x", []int{5000}, fields["velocity-x"]); err != nil {
		t.Fatal(err)
	}
	if aw.NumFields() != 3 {
		t.Fatalf("NumFields = %d", aw.NumFields())
	}
	return aw.Bytes(), fields
}

func TestArchiveRoundTrip(t *testing.T) {
	blob, fields := buildArchive(t)
	a, err := OpenArchive(blob)
	if err != nil {
		t.Fatal(err)
	}
	infos := a.Fields()
	if len(infos) != 3 {
		t.Fatalf("fields %d", len(infos))
	}
	// Name-sorted listing.
	if infos[0].Name != "density" || infos[2].Name != "velocity-x" {
		t.Errorf("order: %v %v %v", infos[0].Name, infos[1].Name, infos[2].Name)
	}
	for name, orig := range fields {
		vals, dims, err := a.Read(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(vals) != len(orig) {
			t.Fatalf("%s: %d values", name, len(vals))
		}
		p := 1
		for _, d := range dims {
			p *= d
		}
		if p != len(orig) {
			t.Fatalf("%s: dims %v", name, dims)
		}
		for i := range orig {
			if math.Abs(float64(orig[i])-float64(vals[i])) > 1e-3 {
				t.Fatalf("%s: value %d exceeds bound", name, i)
			}
		}
	}
	// Metadata carries the resolved bound.
	for _, inf := range infos {
		if inf.ErrBound != 1e-3 {
			t.Errorf("%s: ErrBound %g", inf.Name, inf.ErrBound)
		}
		if inf.CompressedSize <= 0 || inf.NumValues <= 0 {
			t.Errorf("%s: %+v", inf.Name, inf)
		}
	}
}

func TestArchiveReadRange(t *testing.T) {
	blob, fields := buildArchive(t)
	a, err := OpenArchive(blob)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := a.Read("pressure")
	if err != nil {
		t.Fatal(err)
	}
	part, err := a.ReadRange("pressure", 500, 900)
	if err != nil {
		t.Fatal(err)
	}
	for i := range part {
		if part[i] != full[500+i] {
			t.Fatalf("range value %d differs", i)
		}
	}
	_ = fields
	if _, err := a.ReadRange("nope", 0, 1); err != ErrFieldNotFound {
		t.Errorf("got %v", err)
	}
}

func TestArchiveWriterErrors(t *testing.T) {
	aw := NewArchiveWriter(Options{ErrorBound: 1e-3})
	data := testField(100, 1)
	if err := aw.AddField("", []int{100}, data); err == nil {
		t.Error("empty name accepted")
	}
	if err := aw.AddField("x", []int{99}, data); err != ErrFieldDims {
		t.Errorf("bad dims: %v", err)
	}
	if err := aw.AddField("x", nil, data); err != ErrFieldDims {
		t.Errorf("nil dims: %v", err)
	}
	if err := aw.AddField("x", []int{100}, data); err != nil {
		t.Fatal(err)
	}
	if err := aw.AddField("x", []int{100}, data); err != ErrFieldExists {
		t.Errorf("duplicate: %v", err)
	}
	if err := aw.AddField("y", []int{100}, data); err != nil {
		t.Fatal(err)
	}
}

func TestArchiveCorrupt(t *testing.T) {
	blob, _ := buildArchive(t)
	if _, err := OpenArchive(blob[:4]); err == nil {
		t.Error("short archive accepted")
	}
	if _, err := OpenArchive([]byte("XXXX\x01\x00\x00\x00\x00")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := OpenArchive(blob[:len(blob)-10]); err == nil {
		t.Error("truncated payload accepted")
	}
	for i := 0; i < len(blob); i += 31 {
		c := append([]byte(nil), blob...)
		c[i] ^= 0x80
		_, _ = OpenArchive(c) // must not panic
	}
}

func TestArchiveMissingField(t *testing.T) {
	blob, _ := buildArchive(t)
	a, err := OpenArchive(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Read("missing"); err != ErrFieldNotFound {
		t.Errorf("got %v", err)
	}
}

func TestArchiveEmpty(t *testing.T) {
	aw := NewArchiveWriter(Options{ErrorBound: 1e-3})
	a, err := OpenArchive(aw.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Fields()) != 0 {
		t.Error("fields in empty archive")
	}
}

func TestArchiveFloat64Fields(t *testing.T) {
	aw := NewArchiveWriter(Options{ErrorBound: 1e-8})
	d64 := make([]float64, 5000)
	for i := range d64 {
		d64[i] = math.Sqrt(float64(i + 1))
	}
	if err := aw.AddFieldFloat64("psi", []int{50, 100}, d64); err != nil {
		t.Fatal(err)
	}
	if err := aw.AddField("rho", []int{100}, testField(100, 31)); err != nil {
		t.Fatal(err)
	}
	a, err := OpenArchive(aw.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, inf := range a.Fields() {
		switch inf.Name {
		case "psi":
			if inf.Type != TypeFloat64 {
				t.Errorf("psi type %v", inf.Type)
			}
		case "rho":
			if inf.Type != TypeFloat32 {
				t.Errorf("rho type %v", inf.Type)
			}
		}
	}
	vals, dims, err := a.ReadFloat64("psi")
	if err != nil {
		t.Fatal(err)
	}
	if dims[0] != 50 || len(vals) != 5000 {
		t.Fatalf("dims %v len %d", dims, len(vals))
	}
	for i := range vals {
		if math.Abs(vals[i]-d64[i]) > 1e-8 {
			t.Fatalf("value %d exceeds bound", i)
		}
	}
	// Reading a float64 field as float32 errors cleanly.
	if _, _, err := a.Read("psi"); err == nil {
		t.Error("cross-type read accepted")
	}
	if _, _, err := a.ReadFloat64("rho"); err == nil {
		t.Error("cross-type read accepted")
	}
	if _, _, err := a.ReadFloat64("nope"); err != ErrFieldNotFound {
		t.Errorf("got %v", err)
	}
}

func TestArchiveFloat64Dims(t *testing.T) {
	aw := NewArchiveWriter(Options{ErrorBound: 1e-3})
	if err := aw.AddFieldFloat64("x", []int{3}, make([]float64, 4)); err != ErrFieldDims {
		t.Errorf("got %v", err)
	}
}

// BenchmarkArchiveWriter pins the satellite fix: the serial archive writer
// reuses one compressed-scratch buffer across fields, so allocations per
// archive stay flat no matter how many fields are added (one exact-size
// payload copy per field, no per-field scratch growth).
func BenchmarkArchiveWriter(b *testing.B) {
	const nFields, nVals = 16, 1 << 14
	data := make([][]float32, nFields)
	for i := range data {
		data[i] = testField(nVals, int64(100+i))
	}
	b.ReportAllocs()
	b.SetBytes(int64(nFields * nVals * 4))
	for b.Loop() {
		aw := NewArchiveWriter(Options{ErrorBound: 1e-3})
		for i, d := range data {
			if err := aw.AddField(names16[i], []int{nVals}, d); err != nil {
				b.Fatal(err)
			}
		}
		if aw.Bytes() == nil {
			b.Fatal("empty archive")
		}
	}
}

var names16 = []string{
	"f00", "f01", "f02", "f03", "f04", "f05", "f06", "f07",
	"f08", "f09", "f10", "f11", "f12", "f13", "f14", "f15",
}

// BenchmarkArchiveWriterPipelined is the concurrent counterpart, for the
// serial-vs-pipelined A/B on archive builds.
func BenchmarkArchiveWriterPipelined(b *testing.B) {
	const nFields, nVals = 16, 1 << 14
	data := make([][]float32, nFields)
	for i := range data {
		data[i] = testField(nVals, int64(100+i))
	}
	b.ReportAllocs()
	b.SetBytes(int64(nFields * nVals * 4))
	for b.Loop() {
		aw := NewPipelinedArchiveWriter(Options{ErrorBound: 1e-3}, 0)
		for i, d := range data {
			if err := aw.AddField(names16[i], []int{nVals}, d); err != nil {
				b.Fatal(err)
			}
		}
		if aw.Bytes() == nil {
			b.Fatal("empty archive")
		}
	}
}
